"""Verdict provenance: dependency cones, schema deltas, and the survival
rules that make provenance-scoped invalidation sound."""

from __future__ import annotations

import pytest

from repro.constraints.parser import parse
from repro.core import (
    DimensionSchema,
    HierarchySchema,
    mentioned_categories,
    provenance_for_key,
    schema_delta,
)
from repro.core.dimsat import decision_provenance
from repro.core.implication import implication_provenance
from repro.core.summarizability import summarizability_provenance


@pytest.fixture()
def hierarchy() -> HierarchySchema:
    """Two independent branches joined only at All:
    Base -> {A, C} -> T -> All and X -> Y -> All."""
    return HierarchySchema(
        ["Base", "A", "C", "T", "X", "Y"],
        [
            ("Base", "A"),
            ("Base", "C"),
            ("A", "T"),
            ("C", "T"),
            ("T", "All"),
            ("X", "Y"),
            ("Y", "All"),
        ],
    )


@pytest.fixture()
def schema(hierarchy) -> DimensionSchema:
    return DimensionSchema(hierarchy, ["Base -> C", "C -> T", "X -> Y"])


class TestMentionedCategories:
    def test_all_atom_attributes_contribute(self):
        node = parse("Base.A.T and C = 'x' or T < 5")
        assert mentioned_categories(node) == {"Base", "A", "T", "C"}


class TestConeProvenance:
    def test_dimsat_cone_is_the_upward_closure(self, schema):
        provenance = decision_provenance(schema, "C")
        assert provenance.kind == "dimsat"
        assert provenance.categories == {"C", "T", "All"}
        # Edges whose child endpoint lies inside the cone.
        assert provenance.edges == {("C", "T"), ("T", "All")}
        # Constraints rooted inside the cone.
        assert provenance.constraints == {"C -> T"}
        assert provenance.bottoms is None

    def test_implication_widens_by_the_query(self, schema):
        provenance = implication_provenance(schema, "C -> T")
        assert provenance.kind == "implies"
        assert {"C", "T"} <= provenance.categories
        assert "Base" not in provenance.categories
        assert "X" not in provenance.categories

    def test_summarizability_records_bottoms(self, schema):
        provenance = summarizability_provenance(schema, "T", ("C",))
        assert provenance.kind == "summarizable"
        assert provenance.bottoms == {"Base", "X"}
        # Quantifying over every bottom pulls in both branches.
        assert {"Base", "X", "T", "C"} <= provenance.categories


class TestSchemaDelta:
    def test_constraint_edit_footprint(self, schema):
        edited = schema.with_constraints(["Base -> A"])
        delta = schema_delta(schema, edited)
        assert delta.added_constraints == {"Base -> A"}
        assert delta.constraint_footprint == {"Base", "A"}
        assert not delta.bottoms_changed
        assert not delta.empty

    def test_textual_duplicate_is_semantically_empty(self, schema):
        duplicated = DimensionSchema(
            schema.hierarchy, list(schema.constraints) + [parse("C -> T")]
        )
        delta = schema_delta(schema, duplicated)
        assert delta.empty

    def test_edge_edit_records_child_endpoints(self, schema):
        edited = DimensionSchema(
            schema.hierarchy.without_edge("Base", "A"), ["Base -> C", "C -> T", "X -> Y"]
        )
        delta = schema_delta(schema, edited)
        assert delta.removed_edges == {("Base", "A")}
        assert delta.changed_edge_children == {"Base"}

    def test_bottom_set_change_is_flagged(self, schema):
        edited = DimensionSchema(
            schema.hierarchy.with_category("Z", parents=["T"]),
            schema.constraints,
        )
        delta = schema_delta(schema, edited)
        assert delta.bottoms_changed


class TestSurvival:
    def test_disjoint_branch_edit_survives(self, schema):
        provenance = decision_provenance(schema, "C")
        edited = schema.with_constraints(["X -> Y implies X -> Y"])
        assert provenance.survives(schema_delta(schema, edited))

    def test_cone_constraint_edit_kills(self, schema):
        provenance = decision_provenance(schema, "C")
        edited = DimensionSchema(schema.hierarchy, ["Base -> C", "X -> Y"])
        assert not provenance.survives(schema_delta(schema, edited))

    def test_cone_edge_edit_kills(self, schema):
        provenance = decision_provenance(schema, "C")
        edited = DimensionSchema(
            schema.hierarchy.with_category("Z", parents=["All"], children=["C"]),
            schema.constraints,
        )
        assert not provenance.survives(schema_delta(schema, edited))

    def test_summarizable_dies_with_the_bottom_set(self, schema):
        provenance = summarizability_provenance(schema, "T", ("C",))
        edited = DimensionSchema(
            schema.hierarchy.with_category("Z", parents=["X"]),
            schema.constraints,
        )
        assert not provenance.survives(schema_delta(schema, edited))

    def test_empty_delta_always_survives(self, schema):
        provenance = decision_provenance(schema, "Base")
        assert provenance.survives(schema_delta(schema, schema))


class TestProvenanceForKey:
    def test_dispatch_matches_the_kernel_hooks(self, schema):
        assert provenance_for_key(
            schema, ("dimsat", "C", ())
        ) == decision_provenance(schema, "C")
        assert provenance_for_key(
            schema, ("implies", "C -> T", ())
        ) == implication_provenance(schema, "C -> T")
        assert provenance_for_key(
            schema, ("summarizable", "T", ("C",), ())
        ) == summarizability_provenance(schema, "T", ("C",))

    def test_unknown_kind_is_conservative(self, schema):
        assert provenance_for_key(schema, ("mystery", "C", ())) is None
