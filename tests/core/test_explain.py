"""Explanation API tests: diagnoses name the right members and failure
modes, and renderings are readable."""

from __future__ import annotations

import pytest

from repro.core.explain import (
    explain_summarizability_in_instance,
    explain_summarizability_in_schema,
)


class TestInstanceLevel:
    def test_positive_has_no_diagnoses(self, loc_instance):
        explanation = explain_summarizability_in_instance(
            loc_instance, "Country", ["City"]
        )
        assert explanation.summarizable
        assert explanation.diagnoses == ()
        assert "summarizable" in explanation.render()

    def test_lost_facts_diagnosed(self, loc_instance):
        explanation = explain_summarizability_in_instance(
            loc_instance, "Country", ["State", "Province"]
        )
        assert not explanation.summarizable
        assert [d.member for d in explanation.diagnoses] == ["s5"]
        assert explanation.diagnoses[0].kind == "lost"
        assert "LOST" in explanation.render()

    def test_double_counting_diagnosed(self, loc_instance):
        explanation = explain_summarizability_in_instance(
            loc_instance, "Country", ["City", "SaleRegion"]
        )
        assert not explanation.summarizable
        # Every store passes through both a city and a sale region.
        assert all(d.kind == "double-counted" for d in explanation.diagnoses)
        assert "DOUBLE COUNTED" in explanation.render()

    def test_max_diagnoses_caps_output(self, loc_instance):
        explanation = explain_summarizability_in_instance(
            loc_instance, "Country", ["City", "SaleRegion"], max_diagnoses=2
        )
        assert len(explanation.diagnoses) == 2

    def test_vacuous_members_not_diagnosed(self, loc_instance):
        # Nothing reaches Province except Canadian chains; the others are
        # vacuous for a Province target, and the Canadian ones pass
        # through exactly one City.
        explanation = explain_summarizability_in_instance(
            loc_instance, "Province", ["City"]
        )
        assert explanation.summarizable


class TestSchemaLevel:
    def test_positive(self, loc_schema):
        explanation = explain_summarizability_in_schema(
            loc_schema, "Country", ["City"]
        )
        assert explanation.summarizable
        assert explanation.counterexample is None

    def test_negative_carries_counterexample(self, loc_schema):
        explanation = explain_summarizability_in_schema(
            loc_schema, "Country", ["State", "Province"]
        )
        assert not explanation.summarizable
        assert explanation.counterexample is not None
        assert explanation.counterexample.name_of("City") == "Washington"
        rendered = explanation.render()
        assert "NOT summarizable" in rendered
        assert "counterexample shape" in rendered

    def test_counterexample_member_diagnosed(self, loc_schema):
        explanation = explain_summarizability_in_schema(
            loc_schema, "Country", ["State", "Province"]
        )
        assert explanation.diagnoses
        assert explanation.diagnoses[0].kind == "lost"

    def test_double_count_counterexample(self, loc_schema):
        explanation = explain_summarizability_in_schema(
            loc_schema, "Country", ["City", "SaleRegion"]
        )
        assert not explanation.summarizable
        assert explanation.diagnoses
        assert explanation.diagnoses[0].kind == "double-counted"
