"""Rollup helper tests: chains, witnesses, maximal path enumeration."""

from __future__ import annotations

from repro.core.rollup import (
    category_paths_from,
    chain_witness,
    has_category_chain,
    reached_categories,
)


class TestCategoryChain:
    def test_single_step(self, loc_instance):
        assert has_category_chain(loc_instance, "s1", ["City"])
        assert not has_category_chain(loc_instance, "s1", ["SaleRegion"])

    def test_multi_step(self, loc_instance):
        assert has_category_chain(
            loc_instance, "s1", ["City", "Province", "SaleRegion", "Country"]
        )
        assert not has_category_chain(loc_instance, "s1", ["City", "State"])

    def test_empty_chain_trivially_true(self, loc_instance):
        assert has_category_chain(loc_instance, "s1", [])

    def test_chain_requires_direct_edges(self, loc_instance):
        # Toronto has no direct Country parent.
        assert not has_category_chain(loc_instance, "s1", ["City", "Country"])
        # Washington does.
        assert has_category_chain(loc_instance, "s5", ["City", "Country"])


class TestWitness:
    def test_witness_matches_chain(self, loc_instance):
        witness = chain_witness(loc_instance, "s1", ["City", "Province"])
        assert witness == ("Toronto", "Ontario")

    def test_witness_empty_when_absent(self, loc_instance):
        assert chain_witness(loc_instance, "s1", ["SaleRegion"]) == ()

    def test_witness_agrees_with_has_chain(self, loc_instance):
        for member in loc_instance.members("Store"):
            for chain in (["City"], ["City", "State"], ["SaleRegion", "Country"]):
                holds = has_category_chain(loc_instance, member, chain)
                assert bool(chain_witness(loc_instance, member, chain)) == holds


class TestMaximalPaths:
    def test_canadian_store_single_path(self, loc_instance):
        paths = set(category_paths_from(loc_instance, "s1"))
        assert paths == {("City", "Province", "SaleRegion", "Country", "All")}

    def test_texan_store_two_paths(self, loc_instance):
        paths = set(category_paths_from(loc_instance, "s4"))
        assert paths == {
            ("City", "State", "Country", "All"),
            ("SaleRegion", "Country", "All"),
        }

    def test_washington_store_paths(self, loc_instance):
        paths = set(category_paths_from(loc_instance, "s5"))
        assert paths == {
            ("City", "Country", "All"),
            ("SaleRegion", "Country", "All"),
        }

    def test_top_member_has_no_paths(self, loc_instance):
        assert list(category_paths_from(loc_instance, "all")) == []


class TestReachedCategories:
    def test_canadian_store(self, loc_instance):
        assert reached_categories(loc_instance, "s1") == frozenset(
            {"City", "Province", "SaleRegion", "Country", "All"}
        )

    def test_washington_skips_state_province(self, loc_instance):
        reached = reached_categories(loc_instance, "s5")
        assert "State" not in reached
        assert "Province" not in reached
        assert "Country" in reached
