"""InstanceBuilder tests: staged construction, eager errors, editing."""

from __future__ import annotations

import pytest

from repro.core.builder import InstanceBuilder
from repro.errors import InstanceError, SchemaError
from repro.generators.location import location_instance


class TestStaging:
    def test_fluent_construction(self, chain_hierarchy):
        instance = (
            InstanceBuilder(chain_hierarchy)
            .member("d1", "Day")
            .member("jan", "Month", name="January")
            .member("y", "Year")
            .chain("d1", "jan", "y")
            .freeze()
        )
        assert instance.is_valid()
        assert instance.name("jan") == "January"

    def test_members_shorthand(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).members("Day", "d1", "d2")
        assert len(builder) == 2

    def test_unknown_category_rejected(self, chain_hierarchy):
        with pytest.raises(SchemaError):
            InstanceBuilder(chain_hierarchy).member("x", "Galaxy")

    def test_category_redeclaration_rejected(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("x", "Day")
        with pytest.raises(SchemaError):
            builder.member("x", "Month")

    def test_idempotent_redeclaration_allowed(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("x", "Day")
        builder.member("x", "Day", name="again")
        assert len(builder) == 1

    def test_link_requires_declared_members(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("d1", "Day")
        with pytest.raises(SchemaError):
            builder.link("d1", "ghost")

    def test_link_checks_c1_eagerly(self, chain_hierarchy):
        builder = (
            InstanceBuilder(chain_hierarchy)
            .member("d1", "Day")
            .member("y", "Year")
        )
        with pytest.raises(SchemaError, match="no hierarchy edge"):
            builder.link("d1", "y")

    def test_rename_requires_declaration(self, chain_hierarchy):
        with pytest.raises(SchemaError):
            InstanceBuilder(chain_hierarchy).rename("ghost", "x")


class TestOrphans:
    def test_pending_orphans(self, chain_hierarchy):
        builder = (
            InstanceBuilder(chain_hierarchy)
            .member("d1", "Day")
            .member("y", "Year")
        )
        # Year sits under All, so only the day is an orphan.
        assert builder.pending_orphans() == ["d1"]

    def test_freeze_rejects_orphans(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("d1", "Day")
        with pytest.raises(InstanceError):
            builder.freeze()

    def test_freeze_without_validation(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("d1", "Day")
        instance = builder.freeze(validate=False)
        assert not instance.is_valid()


class TestEditing:
    def test_round_trip_from_instance(self):
        original = location_instance()
        rebuilt = InstanceBuilder.from_instance(original).freeze()
        assert rebuilt.is_valid()
        assert len(rebuilt) == len(original)
        assert set(rebuilt.member_edges()) == set(original.member_edges())
        assert rebuilt.name("Washington") == "Washington"

    def test_what_if_edit_violates_schema(self, loc_schema):
        from repro.constraints import satisfies_all

        builder = InstanceBuilder.from_instance(location_instance())
        # Move Vancouver straight under Canada: a non-Washington shortcut.
        builder.unlink("Vancouver", "BritishColumbia")
        builder.link("Vancouver", "Canada")
        edited = builder.freeze()
        assert edited.is_valid()
        assert not satisfies_all(edited, loc_schema.constraints)

    def test_remove_member_drops_edges(self):
        builder = InstanceBuilder.from_instance(location_instance())
        builder.remove_member("s1")
        instance = builder.freeze()
        assert "s1" not in instance
        assert all(
            "s1" not in edge for edge in instance.member_edges()
        )

    def test_unlink_noop_when_absent(self, chain_hierarchy):
        builder = InstanceBuilder(chain_hierarchy).member("y", "Year")
        builder.unlink("y", "ghost")
        assert builder.freeze().is_valid()
