"""Summarizability tests (Theorem 1) at instance and schema level."""

from __future__ import annotations

import pytest

from repro.constraints import FALSE, ExactlyOne, Implies, RollsUpAtom, unparse
from repro.core import (
    DimensionSchema,
    HierarchySchema,
    is_summarizable_in_instance,
    is_summarizable_in_schema,
    summarizability_constraint,
    summarizability_constraints,
    summarizability_matrix,
    summarizable_sets,
)
from repro.errors import SchemaError


class TestConstraintConstruction:
    def test_shape(self):
        node = summarizability_constraint("Store", "Country", ["City"])
        assert isinstance(node, Implies)
        assert isinstance(node.antecedent, RollsUpAtom)
        assert isinstance(node.consequent, ExactlyOne)

    def test_rendering_matches_paper(self):
        node = summarizability_constraint("Store", "Country", ["State", "Province"])
        assert unparse(node) == (
            "Store.Country implies "
            "one(Store.Province.Country, Store.State.Country)"
        )

    def test_empty_sources_forbid_reaching(self):
        node = summarizability_constraint("Store", "Country", [])
        assert node.consequent == FALSE

    def test_one_constraint_per_bottom_category(self, loc_hierarchy):
        pairs = summarizability_constraints(loc_hierarchy, "Country", ["City"])
        assert [bottom for bottom, _ in pairs] == ["Store"]

    def test_multiple_bottoms(self):
        g = HierarchySchema(
            ["A", "B", "C"], [("A", "C"), ("B", "C"), ("C", "All")]
        )
        pairs = summarizability_constraints(g, "C", ["A"])
        assert [bottom for bottom, _ in pairs] == ["A", "B"]


class TestInstanceLevel:
    def test_example10_positive(self, loc_instance):
        assert is_summarizable_in_instance(loc_instance, "Country", ["City"])

    def test_example10_negative(self, loc_instance):
        assert not is_summarizable_in_instance(
            loc_instance, "Country", ["State", "Province"]
        )

    def test_saleregion_source(self, loc_instance):
        # Every store in the figure reaches Country through a sale region.
        assert is_summarizable_in_instance(loc_instance, "Country", ["SaleRegion"])

    def test_overlapping_sources_fail_exactly_one(self, loc_instance):
        # City and SaleRegion both lie on paths for every store: two of the
        # through-atoms hold, violating the exactly-one condition.
        assert not is_summarizable_in_instance(
            loc_instance, "Country", ["City", "SaleRegion"]
        )

    def test_target_from_itself_is_degenerate(self, loc_instance):
        # c_b.c with S = {c}: through-atom Store.Country.Country reduces to
        # Store.Country, so the implication holds.
        assert is_summarizable_in_instance(loc_instance, "Country", ["Country"])

    def test_unknown_categories_rejected(self, loc_instance):
        with pytest.raises(SchemaError):
            is_summarizable_in_instance(loc_instance, "Galaxy", ["City"])
        with pytest.raises(SchemaError):
            is_summarizable_in_instance(loc_instance, "Country", ["Galaxy"])

    def test_empty_sources(self, loc_instance):
        assert not is_summarizable_in_instance(loc_instance, "Country", [])


class TestSchemaLevel:
    def test_example10_positive(self, loc_schema):
        assert is_summarizable_in_schema(loc_schema, "Country", ["City"])

    def test_example10_negative(self, loc_schema):
        assert not is_summarizable_in_schema(
            loc_schema, "Country", ["State", "Province"]
        )

    def test_saleregion_safe_by_constraint_b(self, loc_schema):
        # Constraint (b) forces every store through a sale region, and sale
        # regions only ascend to Country, so SaleRegion is a safe source.
        assert is_summarizable_in_schema(loc_schema, "Country", ["SaleRegion"])

    def test_schema_level_stronger_than_instance_level(self, loc_schema):
        # SaleRegion is summarizable from {State, Province} in no schema
        # sense (a USA frozen dimension reaches SaleRegion straight from
        # the store), even though some instances may satisfy it.
        assert not is_summarizable_in_schema(
            loc_schema, "SaleRegion", ["State", "Province"]
        )

    def test_instance_follows_schema(self, loc_schema, loc_instance):
        # Schema-level summarizability must hold in any valid instance.
        for target, sources in [
            ("Country", ["City"]),
            ("Country", ["SaleRegion"]),
            ("SaleRegion", ["Store"]),
        ]:
            if is_summarizable_in_schema(loc_schema, target, sources):
                assert is_summarizable_in_instance(loc_instance, target, sources)


class TestSearch:
    def test_minimal_sets_for_country(self, loc_schema):
        found = summarizable_sets(loc_schema, "Country", max_size=2)
        assert frozenset({"City"}) in found
        assert frozenset({"SaleRegion"}) in found
        assert frozenset({"Store"}) in found
        # Minimality: no returned set contains another.
        for left in found:
            for right in found:
                assert left == right or not left < right

    def test_search_respects_candidates(self, loc_schema):
        found = summarizable_sets(
            loc_schema, "Country", candidates=["State", "Province"], max_size=2
        )
        assert found == []

    def test_matrix_rows(self, loc_instance):
        rows = summarizability_matrix(
            loc_instance, targets=["Country"], singletons=["City", "State"]
        )
        verdicts = {(s, t): v for s, t, v in rows}
        assert verdicts[("City", "Country")] is True
        assert verdicts[("State", "Country")] is False

    def test_matrix_skips_unreachable_pairs(self, loc_instance):
        rows = summarizability_matrix(loc_instance, targets=["Store"])
        assert rows == []
