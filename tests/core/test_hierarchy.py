"""HierarchySchema tests: Definition 1, shortcuts, cycles, paths."""

from __future__ import annotations

import pytest

from repro.core import ALL, HierarchySchema
from repro.errors import SchemaError


class TestConstruction:
    def test_all_added_automatically(self):
        g = HierarchySchema(["A"], [("A", ALL)])
        assert ALL in g.categories

    def test_rejects_unknown_category_in_edge(self):
        with pytest.raises(SchemaError):
            HierarchySchema(["A"], [("A", "B")])

    def test_rejects_self_loop(self):
        with pytest.raises(SchemaError):
            HierarchySchema(["A"], [("A", "A"), ("A", ALL)])

    def test_rejects_category_not_reaching_all(self):
        with pytest.raises(SchemaError):
            HierarchySchema(["A", "B"], [("A", ALL)])

    def test_cycle_must_still_reach_all(self):
        # Example 4: SaleDistrict <-> City is fine as long as both reach All.
        g = HierarchySchema(
            ["SaleDistrict", "City"],
            [
                ("SaleDistrict", "City"),
                ("City", "SaleDistrict"),
                ("City", ALL),
                ("SaleDistrict", ALL),
            ],
        )
        assert g.is_cyclic()

    def test_from_paths(self):
        g = HierarchySchema.from_paths(["Day", "Month", "Year"], ["Day", "Week"])
        assert g.has_edge("Day", "Month")
        assert g.has_edge("Week", ALL)
        assert g.has_edge("Year", ALL)

    def test_equality_and_hash(self):
        g1 = HierarchySchema(["A"], [("A", ALL)])
        g2 = HierarchySchema(["A"], [("A", ALL)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert len({g1, g2}) == 1


class TestStructure:
    def test_parents_children(self, loc_hierarchy):
        assert loc_hierarchy.parents("Store") == frozenset({"City", "SaleRegion"})
        assert loc_hierarchy.children("Country") == frozenset(
            {"City", "State", "SaleRegion"}
        )

    def test_unknown_category_raises(self, loc_hierarchy):
        with pytest.raises(SchemaError):
            loc_hierarchy.parents("Galaxy")
        with pytest.raises(SchemaError):
            loc_hierarchy.reaches("Galaxy", ALL)

    def test_reaches_is_reflexive_transitive(self, loc_hierarchy):
        assert loc_hierarchy.reaches("Store", "Store")
        assert loc_hierarchy.reaches("Store", "Country")
        assert not loc_hierarchy.reaches("Country", "Store")

    def test_ancestors_descendants(self, loc_hierarchy):
        assert "Country" in loc_hierarchy.ancestors("Store")
        assert "Store" in loc_hierarchy.descendants("Country")
        assert "Store" not in loc_hierarchy.ancestors("Store")

    def test_bottom_categories(self, loc_hierarchy):
        assert loc_hierarchy.bottom_categories() == frozenset({"Store"})

    def test_multiple_bottom_categories(self):
        g = HierarchySchema(
            ["A", "B", "C"], [("A", "C"), ("B", "C"), ("C", ALL)]
        )
        assert g.bottom_categories() == frozenset({"A", "B"})

    def test_degenerate_all_only_schema(self):
        g = HierarchySchema([], [])
        assert g.bottom_categories() == frozenset({ALL})

    def test_shortcuts_detects_city_country(self, loc_hierarchy):
        # Example 3: City and Country form a shortcut.
        assert ("City", "Country") in loc_hierarchy.shortcuts()

    def test_store_saleregion_is_also_a_shortcut(self, loc_hierarchy):
        assert ("Store", "SaleRegion") in loc_hierarchy.shortcuts()

    def test_chain_has_no_shortcuts(self, chain_hierarchy):
        assert chain_hierarchy.shortcuts() == frozenset()

    def test_acyclic_schema(self, loc_hierarchy):
        assert not loc_hierarchy.is_cyclic()


class TestPaths:
    def test_simple_paths_chain(self, chain_hierarchy):
        paths = list(chain_hierarchy.simple_paths("Day", "Year"))
        assert paths == [("Day", "Month", "Year")]

    def test_simple_paths_diamond(self, diamond_hierarchy):
        paths = set(diamond_hierarchy.simple_paths("A", "D"))
        assert paths == {("A", "B", "D"), ("A", "C", "D")}

    def test_simple_paths_no_route(self, diamond_hierarchy):
        assert list(diamond_hierarchy.simple_paths("D", "A")) == []

    def test_simple_paths_to_self_empty(self, diamond_hierarchy):
        assert list(diamond_hierarchy.simple_paths("A", "A")) == []

    def test_simple_paths_in_cyclic_schema_terminate(self):
        g = HierarchySchema(
            ["A", "B", "C"],
            [("A", "B"), ("B", "C"), ("C", "B"), ("B", ALL), ("C", ALL)],
        )
        paths = set(g.simple_paths("A", ALL))
        assert ("A", "B", ALL) in paths
        assert ("A", "B", "C", ALL) in paths
        assert all(len(set(p)) == len(p) for p in paths)

    def test_is_simple_path(self, loc_hierarchy):
        assert loc_hierarchy.is_simple_path(("Store", "City", "Province"))
        assert not loc_hierarchy.is_simple_path(("Store",))
        assert not loc_hierarchy.is_simple_path(("Store", "Country"))
        assert not loc_hierarchy.is_simple_path(("Store", "City", "Store"))


class TestDerivation:
    def test_with_edges(self, chain_hierarchy):
        bigger = chain_hierarchy.with_edges([("Day", ALL)])
        assert bigger.has_edge("Day", ALL)
        assert not chain_hierarchy.has_edge("Day", ALL)

    def test_without_category(self, loc_hierarchy):
        smaller = loc_hierarchy.without_category("Province")
        assert not smaller.has_category("Province")
        assert not smaller.has_edge("City", "Province")

    def test_without_category_rejects_breaking_reachability(self, loc_hierarchy):
        # Dropping SaleRegion would leave Province unable to reach All.
        with pytest.raises(SchemaError):
            loc_hierarchy.without_category("SaleRegion")

    def test_without_category_cannot_remove_all(self, loc_hierarchy):
        with pytest.raises(SchemaError):
            loc_hierarchy.without_category(ALL)

    def test_without_category_may_orphan(self, chain_hierarchy):
        # Removing Month leaves Day unable to reach All: must raise.
        with pytest.raises(SchemaError):
            chain_hierarchy.without_category("Month")
