"""Multiple bottom categories (Definition 1 allows them; Theorem 1
quantifies over every one).

A dimension tracking orders from two capture systems: online orders and
in-store orders are *different bottom categories* feeding the same
hierarchy.  In-store orders may skip the fulfilment center (curbside
pickup), so Region is summarizable from {Center} for the online bottom
but not for the in-store bottom - and Theorem 1's per-bottom conjunction
must return False overall.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ALL,
    DimensionInstance,
    DimensionSchema,
    HierarchySchema,
    dimsat,
    is_summarizable_in_instance,
    is_summarizable_in_schema,
)
from repro.core.summarizability import summarizability_constraints
from repro.olap import SUM, FactTable, cube_view, recombine, views_equal


@pytest.fixture(scope="module")
def orders_hierarchy():
    return HierarchySchema(
        ["OnlineOrder", "StoreOrder", "Center", "Region"],
        [
            ("OnlineOrder", "Center"),
            ("StoreOrder", "Center"),
            ("StoreOrder", "Region"),  # curbside: skips the center
            ("Center", "Region"),
            ("Region", ALL),
        ],
    )


@pytest.fixture(scope="module")
def orders_schema(orders_hierarchy):
    return DimensionSchema(
        orders_hierarchy,
        [
            "OnlineOrder -> Center",
            "one(StoreOrder -> Center, StoreOrder -> Region)",
            "Center -> Region",
        ],
    )


@pytest.fixture()
def orders_instance(orders_hierarchy):
    members = {
        "web-1": "OnlineOrder",
        "web-2": "OnlineOrder",
        "pos-1": "StoreOrder",
        "pos-2": "StoreOrder",  # the curbside order
        "center-east": "Center",
        "east": "Region",
    }
    edges = [
        ("web-1", "center-east"),
        ("web-2", "center-east"),
        ("pos-1", "center-east"),
        ("pos-2", "east"),
        ("center-east", "east"),
    ]
    return DimensionInstance(orders_hierarchy, members, edges)


class TestStructure:
    def test_two_bottom_categories(self, orders_hierarchy):
        assert orders_hierarchy.bottom_categories() == frozenset(
            {"OnlineOrder", "StoreOrder"}
        )

    def test_instance_valid(self, orders_instance):
        assert orders_instance.violations() == []

    def test_base_members_span_both_bottoms(self, orders_instance):
        assert orders_instance.base_members() == frozenset(
            {"web-1", "web-2", "pos-1", "pos-2"}
        )

    def test_every_category_satisfiable(self, orders_schema):
        for category in orders_schema.hierarchy.categories:
            assert dimsat(orders_schema, category).satisfiable, category


class TestPerBottomSummarizability:
    def test_theorem1_builds_one_constraint_per_bottom(self, orders_hierarchy):
        pairs = summarizability_constraints(orders_hierarchy, "Region", ["Center"])
        assert [bottom for bottom, _ in pairs] == ["OnlineOrder", "StoreOrder"]

    def test_fails_overall_because_of_one_bottom(
        self, orders_instance, orders_schema
    ):
        # Online orders all pass through the center; the curbside store
        # order does not - the conjunction over bottoms must fail.
        assert not is_summarizable_in_instance(
            orders_instance, "Region", ["Center"]
        )
        assert not is_summarizable_in_schema(orders_schema, "Region", ["Center"])

    def test_passing_set_covers_both_bottoms(self, orders_instance, orders_schema):
        sources = ["Center", "StoreOrder"]
        # Subtle: StoreOrder as a source covers the curbside order, but a
        # store order that goes through the center is then on TWO source
        # paths.  Theorem 1 decides; Definition 6 on real data must agree.
        verdict = is_summarizable_in_instance(orders_instance, "Region", sources)
        facts = FactTable(
            orders_instance,
            [(m, {"n": 1.0}) for m in sorted(orders_instance.base_members())],
        )
        direct = cube_view(facts, "Region", SUM, "n")
        derived = recombine(
            orders_instance,
            "Region",
            [cube_view(facts, c, SUM, "n") for c in sources],
            SUM,
        )
        assert views_equal(direct, derived) == verdict

    def test_online_bottom_alone_would_pass(self, orders_instance):
        """Restricting to the online system (dropping store orders) makes
        {Center} safe - demonstrating the failure above is genuinely the
        other bottom's doing."""
        members = {
            m: orders_instance.category_of(m)
            for m in orders_instance.all_members()
            if orders_instance.category_of(m) != "StoreOrder"
        }
        edges = [
            (c, p)
            for c, p in orders_instance.member_edges()
            if c in members and p in members
        ]
        online_only = DimensionInstance(
            orders_instance.hierarchy, members, edges
        )
        assert is_summarizable_in_instance(online_only, "Region", ["Center"])


class TestNavigationAcrossBottoms:
    def test_navigator_refuses_center_view_for_region(
        self, orders_instance, orders_schema
    ):
        from repro.olap import AggregateNavigator

        facts = FactTable(
            orders_instance,
            [(m, {"n": 1.0}) for m in sorted(orders_instance.base_members())],
        )
        navigator = AggregateNavigator(facts, schema=orders_schema)
        navigator.materialize("Center", SUM, "n")
        view, plan = navigator.answer("Region", SUM, "n")
        assert plan.kind == "base-scan"
        assert view.cells["east"] == 4.0  # nothing lost
