"""Concurrency hammer for the kernel's shared mutable state.

Eight threads pound the hash-consing intern table, the circle-operator
cache, and the decision cache with *equal but independently rebuilt*
schemas (the worst case for interning: every thread parses its own copies
of the same constraints).  Afterwards:

* the intern table holds exactly one canonical node per distinct
  constraint (no duplicate interned nodes);
* the decision cache lost no entries and corrupted none (every cached
  verdict equals a fresh sequential computation);
* the hit/miss counters sum to exactly the number of lookups made.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.constraints.ast import RollsUpAtom, hash_cons
from repro.constraints.parser import parse
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import CircleCache, dimsat
from repro.core.schema import DimensionSchema
from repro.generators.location import location_schema
from repro.io.json_io import schema_from_json, schema_to_json

THREADS = 8
ROUNDS = 30

CONSTRAINT_TEXTS = [
    "Store.City",
    "Store.City.Country",
    "one(Store.City.Country, Store.SaleRegion.Country)",
    "Store.City implies not Store.SaleRegion",
    "City.Country and not City.All = 'x'",
]


def _run_in_threads(worker, n=THREADS):
    """Run ``worker(index)`` on ``n`` threads through a start barrier so
    they really contend, re-raising the first failure."""
    barrier = threading.Barrier(n)

    def wrapped(index):
        barrier.wait()
        return worker(index)

    with ThreadPoolExecutor(max_workers=n) as pool:
        futures = [pool.submit(wrapped, i) for i in range(n)]
        return [f.result() for f in futures]


def test_interning_no_duplicates_under_contention():
    """Equal constraints parsed on 8 threads at once intern to the *same*
    canonical node object - a lost intern-table race would hand different
    threads different canonical nodes and break identity-keyed memos."""
    results = _run_in_threads(
        lambda index: [
            hash_cons(parse(text))
            for _ in range(ROUNDS)
            for text in CONSTRAINT_TEXTS
        ]
    )
    for per_thread in results[1:]:
        for a, b in zip(results[0], per_thread):
            assert a is b


def test_interning_mixed_fresh_nodes():
    """Contending threads interning fresh (structurally equal) atom objects
    still converge on one canonical node per distinct atom."""
    def worker(index):
        return [
            hash_cons(RollsUpAtom("Store", f"C{i % 7}")) for i in range(ROUNDS * 8)
        ]

    results = _run_in_threads(worker)
    canonical = {}
    for per_thread in results:
        for node in per_thread:
            assert canonical.setdefault((node.root, node.target), node) is node


def test_circle_cache_counters_consistent_under_contention():
    """A private CircleCache hammered from 8 threads: hits + misses must
    equal the number of reduce() calls, and every reduction must equal the
    sequential reduction."""
    schema = location_schema()
    result = dimsat(schema, "Store")
    assert result.satisfiable
    sub = result.witness.subhierarchy
    nodes = [hash_cons(parse(text)) for text in CONSTRAINT_TEXTS]

    cache = CircleCache()
    expected = {node: CircleCache().reduce(node, sub) for node in nodes}

    def worker(index):
        out = []
        for round_index in range(ROUNDS):
            for node in nodes:
                out.append((node, cache.reduce(node, sub)))
        return out

    results = _run_in_threads(worker)
    for per_thread in results:
        for node, reduced in per_thread:
            assert reduced == expected[node]
    lookups = THREADS * ROUNDS * len(CONSTRAINT_TEXTS)
    assert cache.hits + cache.misses == lookups
    assert cache.misses >= len(nodes)
    assert len(cache) <= len(nodes)


def test_decision_cache_hammer_equal_rebuilt_schemas():
    """8 threads asking the same questions over independently rebuilt
    (equal-fingerprint) schemas: no lost entries, no corrupt verdicts,
    counters summing to the lookups made."""
    base = location_schema()
    text = schema_to_json(base)
    cache = DecisionCache()
    categories = sorted(base.hierarchy.categories)
    queries = [
        ("dimsat", category) for category in categories
    ] + [("implies", text_) for text_ in CONSTRAINT_TEXTS[:3]]

    def worker(index):
        # Each thread rebuilds its own schema object: equal fingerprint,
        # distinct identity - the cache must unify them.
        schema = schema_from_json(text)
        out = []
        for _ in range(ROUNDS):
            for kind, arg in queries:
                if kind == "dimsat":
                    out.append((kind, arg, cache.dimsat(schema, arg).satisfiable))
                else:
                    out.append((kind, arg, cache.is_implied(schema, arg)))
        return out

    results = _run_in_threads(worker)

    fresh = schema_from_json(text)
    expected = {}
    for kind, arg in queries:
        if kind == "dimsat":
            expected[(kind, arg)] = dimsat(fresh, arg).satisfiable
        else:
            expected[(kind, arg)] = DecisionCache().is_implied(fresh, arg)
    for per_thread in results:
        for kind, arg, verdict in per_thread:
            assert verdict == expected[(kind, arg)], (kind, arg)

    lookups = THREADS * ROUNDS * len(queries)
    stats = cache.stats
    assert stats.hits + stats.misses == lookups
    # Every distinct question computed at least once, and nothing vanished:
    # the table holds exactly the distinct keys (well under the FIFO bound).
    assert len(cache) == len(queries)
    assert stats.misses >= len(queries)
    assert stats.evictions == 0


def test_dimsat_stats_counters_atomic():
    """Concurrent incr() on one DimsatStats loses no updates (the plain
    ``+=`` this replaced dropped increments under this exact schedule)."""
    from repro.core.dimsat import DimsatStats

    stats = DimsatStats()
    per_thread = 5_000

    def worker(index):
        for _ in range(per_thread):
            stats.incr("check_calls")
            stats.incr("assignments_tested", 2)

    _run_in_threads(worker)
    assert stats.check_calls == THREADS * per_thread
    assert stats.assignments_tested == 2 * THREADS * per_thread
