"""Unit and differential tests for the incremental CDCL solver.

The ground truth is the :class:`~repro.generators.sat_encoding.Cnf`
brute-force oracle; instances travel to the solver through the DIMACS
round-trip, so these tests double as an end-to-end check of the export
and parse paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.satsolver import SatError, Solver
from repro.generators.sat_encoding import Cnf, cnf_from_dimacs, random_3cnf


def _load(solver: Solver, cnf: Cnf) -> list:
    """Install a Cnf into the solver; returns the variable map (index i
    of the Cnf -> solver variable)."""
    variables = [solver.new_var() for _ in range(cnf.n_vars)]
    for clause in cnf.clauses:
        solver.add_clause(
            [variables[var] if polarity else -variables[var] for var, polarity in clause]
        )
    return variables


def _solver_model_satisfies(solver: Solver, cnf: Cnf, variables: list) -> bool:
    assignment = [solver.model_value(v) for v in variables]
    return cnf.evaluate(assignment)


class TestBasics:
    def test_empty_database_is_sat(self):
        assert Solver().solve()

    def test_unit_clause(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([v])
        assert solver.solve()
        assert solver.model_value(v) is True

    def test_contradictory_units_unsat(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([v])
        solver.add_clause([-v])
        assert not solver.solve()
        # The solver stays permanently unsat once the database is.
        assert not solver.solve()

    def test_empty_clause_unsat(self):
        solver = Solver()
        solver.new_var()
        solver.add_clause([])
        assert not solver.solve()

    def test_tautology_is_dropped(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([v, -v])
        assert solver.num_clauses == 0
        assert solver.solve()

    def test_invalid_literal_rejected(self):
        solver = Solver()
        with pytest.raises(SatError):
            solver.add_clause([1])  # no variable allocated
        with pytest.raises(SatError):
            solver.add_clause([0])

    def test_invalid_assumption_rejected(self):
        solver = Solver()
        with pytest.raises(SatError):
            solver.solve([3])

    def test_phase_seeds_branch_polarity(self):
        solver = Solver()
        on = solver.new_var(phase=True)
        off = solver.new_var(phase=False)
        assert solver.solve()
        assert solver.model_value(on) is True
        assert solver.model_value(off) is False


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = Solver()
        v = solver.new_var()
        assert solver.solve([v])
        assert solver.model_value(v) is True
        assert solver.solve([-v])
        assert solver.model_value(v) is False

    def test_conflicting_assumptions(self):
        solver = Solver()
        v = solver.new_var()
        assert not solver.solve([v, -v])
        # The database itself is still satisfiable.
        assert solver.solve()

    def test_assumption_against_unit(self):
        solver = Solver()
        v = solver.new_var()
        solver.add_clause([v])
        assert not solver.solve([-v])
        assert solver.solve([v])

    def test_assumptions_do_not_pollute_database(self):
        """A formula UNSAT under assumptions stays SAT without them, and
        clauses learned during the failed attempt must not change any
        verdict."""
        solver = Solver()
        a, b, c = (solver.new_var() for _ in range(3))
        solver.add_clause([-a, b])
        solver.add_clause([-a, -b, c])
        solver.add_clause([-a, -c])  # a -> conflict
        assert not solver.solve([a])
        assert solver.solve()
        assert solver.model_value(a) is False
        assert not solver.solve([a])


class TestLearning:
    def test_learned_clauses_persist_across_solves(self):
        cnf = random_3cnf(8, 34, seed=3)
        solver = Solver()
        variables = _load(solver, cnf)
        first = solver.solve()
        learned_after_first = solver.num_learned
        second = solver.solve()
        assert first == second
        # Re-solving starts from the learned state; it can only grow.
        assert solver.num_learned >= learned_after_first

    def test_learned_clauses_are_implied(self):
        """Every learned clause must be satisfied by every model of the
        original formula (i.e. the lemmas are consequences, not guesses)."""
        import itertools

        cnf = random_3cnf(6, 25, seed=11)
        solver = Solver()
        variables = _load(solver, cnf)
        solver.solve()
        if not solver.learned_clauses():
            return
        var_index = {v: i for i, v in enumerate(variables)}
        for bits in itertools.product((False, True), repeat=cnf.n_vars):
            if not cnf.evaluate(bits):
                continue
            for clause in solver.learned_clauses():
                assert any(
                    bits[var_index[abs(lit)]] == (lit > 0)
                    for lit in clause
                    if abs(lit) in var_index
                ), (clause, bits)


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_agrees_with_brute_force(self, n_vars, n_clauses, seed):
        cnf = cnf_from_dimacs(random_3cnf(n_vars, n_clauses, seed=seed).to_dimacs())
        solver = Solver()
        variables = _load(solver, cnf)
        verdict = solver.solve()
        assert verdict == cnf.brute_force_satisfiable()
        if verdict:
            assert _solver_model_satisfies(solver, cnf, variables)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_incremental_queries_match_monolithic(self, seed):
        """Activation-guarded queries over one incremental solver agree
        with solving each combined formula from scratch - the soundness
        property learned-clause reuse rests on."""
        import random as random_module

        rng = random_module.Random(seed)
        base = random_3cnf(6, rng.randint(4, 18), seed=seed)
        solver = Solver()
        variables = _load(solver, base)
        for query_round in range(4):
            query = random_3cnf(6, rng.randint(1, 5), seed=seed * 7 + query_round)
            activation = solver.new_var()
            for clause in query.clauses:
                solver.add_clause(
                    [-activation]
                    + [
                        variables[var] if polarity else -variables[var]
                        for var, polarity in clause
                    ]
                )
            combined = Cnf(6, base.clauses + query.clauses)
            assert solver.solve([activation]) == combined.brute_force_satisfiable()
            # The base formula must stay decidable in between.
            assert solver.solve() == base.brute_force_satisfiable()

    def test_stats_progress(self):
        cnf = random_3cnf(8, 34, seed=5)
        solver = Solver()
        _load(solver, cnf)
        solver.solve()
        stats = solver.stats.as_dict()
        assert stats["solves"] == 1
        assert stats["propagations"] > 0
