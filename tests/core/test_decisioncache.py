"""Schema fingerprints and the decision cache: keying, hits, equivalence
with the uncached paths, invalidation, and eviction."""

from __future__ import annotations

import pytest

from repro.core import (
    DecisionCache,
    DimensionSchema,
    DimsatOptions,
    HierarchySchema,
    USE_DEFAULT_CACHE,
    default_decision_cache,
    implies,
    is_category_satisfiable,
    is_implied,
    is_summarizable_in_schema,
)
from repro.core.decisioncache import resolve_cache
from repro.generators.location import location_schema


@pytest.fixture()
def cache() -> DecisionCache:
    return DecisionCache()


class TestFingerprint:
    def test_rebuilt_schema_shares_fingerprint(self):
        assert location_schema().fingerprint() == location_schema().fingerprint()

    def test_constraint_order_does_not_matter(self, loc_hierarchy):
        a = DimensionSchema(loc_hierarchy, ["Store -> City", "City -> Country"])
        b = DimensionSchema(loc_hierarchy, ["City -> Country", "Store -> City"])
        assert a.fingerprint() == b.fingerprint()

    def test_extra_constraint_changes_fingerprint(self, loc_schema):
        extended = loc_schema.with_constraints(["Store -> SaleRegion"])
        assert extended.fingerprint() != loc_schema.fingerprint()

    def test_hierarchy_edit_changes_fingerprint(self, loc_hierarchy):
        a = DimensionSchema(loc_hierarchy)
        b = DimensionSchema(loc_hierarchy.without_edge("Store", "SaleRegion"))
        c = DimensionSchema(loc_hierarchy.with_category("Annex"))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


class TestResolution:
    def test_sentinel_resolves_to_process_cache(self):
        assert resolve_cache(USE_DEFAULT_CACHE) is default_decision_cache()

    def test_none_disables(self):
        assert resolve_cache(None) is None

    def test_explicit_cache_passes_through(self, cache):
        assert resolve_cache(cache) is cache


class TestMemoization:
    def test_satisfiability_hits_on_repeat(self, loc_schema, cache):
        first = is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert cache.stats.misses >= 1 and cache.stats.hits == 0
        second = is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert first is second is True
        assert cache.stats.hits == 1

    def test_implication_matches_uncached(self, loc_schema, cache):
        for text in ["Store -> City", "Store -> SaleRegion", "City.Country"]:
            assert is_implied(loc_schema, text, cache=cache) == is_implied(
                loc_schema, text, cache=None
            )

    def test_cached_result_object_is_reused(self, loc_schema, cache):
        first = implies(loc_schema, "Store -> City", cache=cache)
        second = implies(loc_schema, "Store -> City", cache=cache)
        assert first is second
        assert first.implied

    def test_summarizability_matches_uncached(self, loc_schema, cache):
        for target, sources in [
            ("Country", ("City",)),
            ("Country", ("State", "Province")),
            ("Country", ("SaleRegion",)),
        ]:
            cached = is_summarizable_in_schema(
                loc_schema, target, sources, cache=cache
            )
            assert cached == is_summarizable_in_schema(
                loc_schema, target, sources, cache=None
            )

    def test_source_order_shares_the_entry(self, loc_schema, cache):
        is_summarizable_in_schema(
            loc_schema, "Country", ("State", "Province"), cache=cache
        )
        hits = cache.stats.hits
        is_summarizable_in_schema(
            loc_schema, "Country", ("Province", "State"), cache=cache
        )
        assert cache.stats.hits > hits

    def test_verdicts_survive_schema_reconstruction(self, cache):
        assert is_implied(location_schema(), "Store -> City", cache=cache)
        misses = cache.stats.misses
        assert is_implied(location_schema(), "Store -> City", cache=cache)
        assert cache.stats.misses == misses  # rebuilt schema, same entry

    def test_options_participate_in_the_key(self, loc_schema, cache):
        default = implies(loc_schema, "Store -> City", cache=cache)
        ablated = implies(
            loc_schema,
            "Store -> City",
            DimsatOptions(into_pruning=False),
            cache=cache,
        )
        assert default.implied == ablated.implied
        assert cache.stats.misses == 2  # distinct entries per option set


class TestInvalidation:
    def test_invalidate_drops_only_that_schema(self, loc_schema, cache):
        other = loc_schema.with_constraints(["Store -> SaleRegion"])
        is_implied(loc_schema, "Store -> City", cache=cache)
        is_implied(other, "Store -> City", cache=cache)
        entries = len(cache)
        dropped = cache.invalidate(loc_schema)
        assert dropped >= 1
        assert len(cache) == entries - dropped
        assert cache.stats.invalidations == dropped
        # the other schema's verdict is still a hit
        hits = cache.stats.hits
        is_implied(other, "Store -> City", cache=cache)
        assert cache.stats.hits == hits + 1

    def test_invalidate_accepts_raw_fingerprint(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert cache.invalidate(loc_schema.fingerprint()) >= 1

    def test_clear_resets_everything(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestOptionsKey:
    def test_key_shape_is_named_per_field(self):
        """Pin the explicit (name, value) pair shape: a reordered or
        renamed `DimsatOptions` field must change the key visibly, and
        the `astuple` positional footgun must stay gone."""
        from dataclasses import fields

        from repro.core.decisioncache import _options_key

        assert _options_key(None) == ()
        key = _options_key(DimsatOptions())
        assert key == tuple(
            (f.name, getattr(DimsatOptions(), f.name)) for f in fields(DimsatOptions)
        )
        names = [pair[0] for pair in key]
        assert "max_expansions" in names and "keep_trace" in names
        hash(key)  # the whole point: always hashable

    def test_container_fields_stay_hashable(self):
        """Regression for the astuple hazard: a future list/set/dict
        option field must normalize into a hashable key, not blow up
        every memoized decision."""
        from dataclasses import make_dataclass, field

        from repro.core.decisioncache import _options_key

        Grown = make_dataclass(
            "Grown",
            [
                ("flags", list, field(default_factory=lambda: ["a", "b"])),
                ("tags", set, field(default_factory=lambda: {"y", "x"})),
                ("table", dict, field(default_factory=lambda: {"k": [1, 2]})),
            ],
        )
        key = _options_key(Grown())
        hash(key)
        assert key == _options_key(Grown())  # deterministic (sets sorted)


class TestEviction:
    def test_fifo_eviction_is_bounded(self, loc_schema):
        small = DecisionCache(max_entries=2)
        for category in ["Store", "City", "State", "Province"]:
            is_category_satisfiable(loc_schema, category, cache=small)
        assert len(small) == 2
        assert small.stats.evictions == 2

    def test_hot_schema_evicts_other_fingerprints_first(self, loc_schema):
        """At capacity, the oldest entry of *another* schema version goes
        before any entry of the schema being stored."""
        other = loc_schema.with_constraints(["Store -> SaleRegion"])
        small = DecisionCache(max_entries=2)
        is_category_satisfiable(other, "Store", cache=small)  # stale version
        is_category_satisfiable(loc_schema, "Store", cache=small)
        is_category_satisfiable(loc_schema, "City", cache=small)  # at capacity
        assert small.stats.evictions == 1
        assert small.stats.self_evictions == 0
        assert not small.holds(other.fingerprint())  # the stale entry went
        assert len(small.entries_for(loc_schema.fingerprint())) == 2

    def test_self_eviction_only_when_alone_and_counted(self, loc_schema):
        small = DecisionCache(max_entries=2)
        for category in ["Store", "City", "State"]:
            is_category_satisfiable(loc_schema, category, cache=small)
        assert len(small) == 2
        assert small.stats.evictions == 1
        assert small.stats.self_evictions == 1  # nothing else to evict
        # The newest entries survive; the oldest self-evicted.
        kept = {key[2] for key in small.entries_for(loc_schema.fingerprint())}
        assert kept == {"City", "State"}


class TestRekey:
    def test_unrelated_edit_moves_entries_byte_identically(self, loc_schema, cache):
        warm = implies(loc_schema, "Store.City.Country", cache=cache)
        sat = is_category_satisfiable(loc_schema, "SaleRegion", cache=cache)
        edited = loc_schema.with_constraints(
            ["Store -> City implies Store -> City"]
        )
        moved, dropped = cache.rekey(loc_schema, edited)
        # The implies cone covers every category above Store (the edit's
        # Store/City footprint hits it); SaleRegion's upward cone
        # ({SaleRegion, Country, All}) does not contain Store or City.
        assert (moved, dropped) == (1, 1)
        assert cache.stats.rekeyed == 1
        assert not cache.holds(loc_schema.fingerprint())
        hits = cache.stats.hits
        assert is_category_satisfiable(edited, "SaleRegion", cache=cache) == sat
        assert cache.stats.hits == hits + 1
        fresh = is_category_satisfiable(edited, "SaleRegion", cache=None)
        assert sat == fresh
        assert warm.implied  # the dropped one recomputes correctly fresh
        assert implies(edited, "Store.City.Country", cache=None).implied

    def test_identical_fingerprint_is_a_no_op(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        rebuilt = DimensionSchema(
            loc_schema.hierarchy, list(loc_schema.constraints)
        )
        assert cache.rekey(loc_schema, rebuilt) == (0, 0)
        assert len(cache) == 1

    def test_provenance_is_recorded_per_entry(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "SaleRegion", cache=cache)
        key = (loc_schema.fingerprint(), "dimsat", "SaleRegion", ())
        provenance = cache.provenance_of(key)
        assert provenance is not None
        assert provenance.kind == "dimsat"
        assert "SaleRegion" in provenance.categories
        assert "Store" not in provenance.categories  # upward closure only


class TestReport:
    def test_report_mentions_every_layer(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        text = cache.report()
        assert "decision cache:" in text
        assert "circle-operator cache:" in text
        assert "interned constraint nodes:" in text
        assert "hit rate" in text
        stats = cache.stats.as_dict()
        assert stats["misses"] >= 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
