"""Schema fingerprints and the decision cache: keying, hits, equivalence
with the uncached paths, invalidation, and eviction."""

from __future__ import annotations

import pytest

from repro.core import (
    DecisionCache,
    DimensionSchema,
    DimsatOptions,
    HierarchySchema,
    USE_DEFAULT_CACHE,
    default_decision_cache,
    implies,
    is_category_satisfiable,
    is_implied,
    is_summarizable_in_schema,
)
from repro.core.decisioncache import resolve_cache
from repro.generators.location import location_schema


@pytest.fixture()
def cache() -> DecisionCache:
    return DecisionCache()


class TestFingerprint:
    def test_rebuilt_schema_shares_fingerprint(self):
        assert location_schema().fingerprint() == location_schema().fingerprint()

    def test_constraint_order_does_not_matter(self, loc_hierarchy):
        a = DimensionSchema(loc_hierarchy, ["Store -> City", "City -> Country"])
        b = DimensionSchema(loc_hierarchy, ["City -> Country", "Store -> City"])
        assert a.fingerprint() == b.fingerprint()

    def test_extra_constraint_changes_fingerprint(self, loc_schema):
        extended = loc_schema.with_constraints(["Store -> SaleRegion"])
        assert extended.fingerprint() != loc_schema.fingerprint()

    def test_hierarchy_edit_changes_fingerprint(self, loc_hierarchy):
        a = DimensionSchema(loc_hierarchy)
        b = DimensionSchema(loc_hierarchy.without_edge("Store", "SaleRegion"))
        c = DimensionSchema(loc_hierarchy.with_category("Annex"))
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


class TestResolution:
    def test_sentinel_resolves_to_process_cache(self):
        assert resolve_cache(USE_DEFAULT_CACHE) is default_decision_cache()

    def test_none_disables(self):
        assert resolve_cache(None) is None

    def test_explicit_cache_passes_through(self, cache):
        assert resolve_cache(cache) is cache


class TestMemoization:
    def test_satisfiability_hits_on_repeat(self, loc_schema, cache):
        first = is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert cache.stats.misses >= 1 and cache.stats.hits == 0
        second = is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert first is second is True
        assert cache.stats.hits == 1

    def test_implication_matches_uncached(self, loc_schema, cache):
        for text in ["Store -> City", "Store -> SaleRegion", "City.Country"]:
            assert is_implied(loc_schema, text, cache=cache) == is_implied(
                loc_schema, text, cache=None
            )

    def test_cached_result_object_is_reused(self, loc_schema, cache):
        first = implies(loc_schema, "Store -> City", cache=cache)
        second = implies(loc_schema, "Store -> City", cache=cache)
        assert first is second
        assert first.implied

    def test_summarizability_matches_uncached(self, loc_schema, cache):
        for target, sources in [
            ("Country", ("City",)),
            ("Country", ("State", "Province")),
            ("Country", ("SaleRegion",)),
        ]:
            cached = is_summarizable_in_schema(
                loc_schema, target, sources, cache=cache
            )
            assert cached == is_summarizable_in_schema(
                loc_schema, target, sources, cache=None
            )

    def test_source_order_shares_the_entry(self, loc_schema, cache):
        is_summarizable_in_schema(
            loc_schema, "Country", ("State", "Province"), cache=cache
        )
        hits = cache.stats.hits
        is_summarizable_in_schema(
            loc_schema, "Country", ("Province", "State"), cache=cache
        )
        assert cache.stats.hits > hits

    def test_verdicts_survive_schema_reconstruction(self, cache):
        assert is_implied(location_schema(), "Store -> City", cache=cache)
        misses = cache.stats.misses
        assert is_implied(location_schema(), "Store -> City", cache=cache)
        assert cache.stats.misses == misses  # rebuilt schema, same entry

    def test_options_participate_in_the_key(self, loc_schema, cache):
        default = implies(loc_schema, "Store -> City", cache=cache)
        ablated = implies(
            loc_schema,
            "Store -> City",
            DimsatOptions(into_pruning=False),
            cache=cache,
        )
        assert default.implied == ablated.implied
        assert cache.stats.misses == 2  # distinct entries per option set


class TestInvalidation:
    def test_invalidate_drops_only_that_schema(self, loc_schema, cache):
        other = loc_schema.with_constraints(["Store -> SaleRegion"])
        is_implied(loc_schema, "Store -> City", cache=cache)
        is_implied(other, "Store -> City", cache=cache)
        entries = len(cache)
        dropped = cache.invalidate(loc_schema)
        assert dropped >= 1
        assert len(cache) == entries - dropped
        assert cache.stats.invalidations == dropped
        # the other schema's verdict is still a hit
        hits = cache.stats.hits
        is_implied(other, "Store -> City", cache=cache)
        assert cache.stats.hits == hits + 1

    def test_invalidate_accepts_raw_fingerprint(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        assert cache.invalidate(loc_schema.fingerprint()) >= 1

    def test_clear_resets_everything(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 0


class TestEviction:
    def test_fifo_eviction_is_bounded(self, loc_schema):
        small = DecisionCache(max_entries=2)
        for category in ["Store", "City", "State", "Province"]:
            is_category_satisfiable(loc_schema, category, cache=small)
        assert len(small) == 2
        assert small.stats.evictions == 2


class TestReport:
    def test_report_mentions_every_layer(self, loc_schema, cache):
        is_category_satisfiable(loc_schema, "Store", cache=cache)
        text = cache.report()
        assert "decision cache:" in text
        assert "circle-operator cache:" in text
        assert "interned constraint nodes:" in text
        assert "hit rate" in text
        stats = cache.stats.as_dict()
        assert stats["misses"] >= 1
        assert 0.0 <= stats["hit_rate"] <= 1.0
