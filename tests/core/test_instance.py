"""DimensionInstance tests: accessors, rollup structure, and each of the
seven conditions of Figure 2."""

from __future__ import annotations

import pytest

from repro.core import ALL, DimensionInstance, HierarchySchema, TOP_MEMBER
from repro.errors import InstanceError, SchemaError


class TestConstruction:
    def test_top_member_added_automatically(self, chain_instance):
        assert TOP_MEMBER in chain_instance
        assert chain_instance.category_of(TOP_MEMBER) == ALL

    def test_rejects_unknown_category(self, chain_hierarchy):
        with pytest.raises(SchemaError):
            DimensionInstance(chain_hierarchy, {"x": "Galaxy"}, [])

    def test_rejects_edge_with_unknown_member(self, chain_hierarchy):
        with pytest.raises(SchemaError):
            DimensionInstance(chain_hierarchy, {"d": "Day"}, [("d", "ghost")])

    def test_auto_link_to_all_only_for_parentless(self):
        g = HierarchySchema(
            ["A", "B"], [("A", "B"), ("A", ALL), ("B", ALL)]
        )
        d = DimensionInstance(g, {"a1": "A", "a2": "A", "b": "B"}, [("a1", "b")])
        assert d.parents_of("a1") == frozenset({"b"})
        assert d.parents_of("a2") == frozenset({TOP_MEMBER})

    def test_validation_can_be_deferred(self, chain_hierarchy):
        d = DimensionInstance(
            chain_hierarchy, {"d1": "Day"}, [], validate=False
        )
        assert not d.is_valid()  # d1 has no parent (C7)


class TestAccessors:
    def test_members_by_category(self, loc_instance):
        assert loc_instance.members("Country") == frozenset(
            {"Canada", "Mexico", "USA"}
        )

    def test_members_unknown_category(self, loc_instance):
        with pytest.raises(SchemaError):
            loc_instance.members("Galaxy")

    def test_category_of_unknown_member(self, loc_instance):
        with pytest.raises(SchemaError):
            loc_instance.category_of("ghost")

    def test_name_defaults_to_identity(self, loc_instance):
        assert loc_instance.name("Toronto") == "Toronto"

    def test_parents_children(self, loc_instance):
        assert loc_instance.parents_of("s1") == frozenset({"Toronto"})
        assert "s1" in loc_instance.children_of("Toronto")

    def test_len_and_contains(self, loc_instance):
        assert "s1" in loc_instance
        assert "ghost" not in loc_instance
        assert len(loc_instance) == 23  # 22 members + 'all'

    def test_member_edges_iterates_child_parent(self, loc_instance):
        assert ("s1", "Toronto") in set(loc_instance.member_edges())


class TestRollup:
    def test_ancestors_transitive(self, loc_instance):
        assert loc_instance.ancestors_of("s1") == frozenset(
            {"Toronto", "Ontario", "SR-North", "Canada", TOP_MEMBER}
        )

    def test_leq(self, loc_instance):
        assert loc_instance.leq("s1", "s1")
        assert loc_instance.leq("s1", "Canada")
        assert not loc_instance.leq("Canada", "s1")

    def test_rolls_up_to_category(self, loc_instance):
        assert loc_instance.rolls_up_to_category("s1", "Country")
        assert not loc_instance.rolls_up_to_category("s1", "State")
        assert loc_instance.rolls_up_to_category("s1", "Store")  # itself

    def test_ancestor_in(self, loc_instance):
        assert loc_instance.ancestor_in("s1", "Country") == "Canada"
        assert loc_instance.ancestor_in("s1", "State") is None
        assert loc_instance.ancestor_in("s1", "Store") == "s1"

    def test_rollup_mapping_partial(self, loc_instance):
        gamma = loc_instance.rollup_mapping("City", "State")
        assert gamma == {"MexicoCity": "DF", "Austin": "Texas"}

    def test_rollup_mapping_total(self, loc_instance):
        gamma = loc_instance.rollup_mapping("Store", "Country")
        assert len(gamma) == 6

    def test_base_members(self, loc_instance):
        assert loc_instance.base_members() == frozenset(
            {"s1", "s2", "s3", "s4", "s5", "s6"}
        )


def build(hierarchy, members, edges, **kw):
    return DimensionInstance(hierarchy, members, edges, validate=False, **kw)


class TestConditions:
    def test_c1_connectivity(self, chain_hierarchy):
        d = build(
            chain_hierarchy,
            {"d1": "Day", "y": "Year"},
            [("d1", "y")],  # no Day -> Year edge in the schema
        )
        conditions = {v.condition for v in d.violations()}
        assert "(C1) connectivity" in conditions

    def test_c2_partitioning(self, diamond_hierarchy):
        d = build(
            diamond_hierarchy,
            {"a": "A", "b": "B", "c": "C", "d1": "D", "d2": "D"},
            [("a", "b"), ("a", "c"), ("b", "d1"), ("c", "d2")],
        )
        conditions = {v.condition for v in d.violations()}
        assert "(C2) partitioning" in conditions

    def test_c2_satisfied_when_paths_converge(self, diamond_hierarchy):
        d = DimensionInstance(
            diamond_hierarchy,
            {"a": "A", "b": "B", "c": "C", "d1": "D"},
            [("a", "b"), ("a", "c"), ("b", "d1"), ("c", "d1")],
        )
        assert d.is_valid()

    def test_c4_top_category(self, chain_hierarchy):
        d = build(
            chain_hierarchy,
            {"rogue": ALL},
            [],
        )
        conditions = {v.condition for v in d.violations()}
        assert "(C4) top category" in conditions

    def test_c5_shortcuts(self):
        g = HierarchySchema(
            ["A", "B", "C"],
            [("A", "B"), ("B", "C"), ("A", "C"), ("C", ALL)],
        )
        d = build(
            g,
            {"a": "A", "b": "B", "c": "C"},
            [("a", "b"), ("b", "c"), ("a", "c")],
        )
        conditions = {v.condition for v in d.violations()}
        assert "(C5) shortcuts" in conditions

    def test_c6_stratification_same_category_ancestor(self):
        g = HierarchySchema(
            ["A", "B"],
            [("A", "B"), ("B", "A"), ("A", ALL), ("B", ALL)],
        )
        d = build(
            g,
            {"a1": "A", "a2": "A", "b": "B"},
            [("a1", "b"), ("b", "a2"), ("a2", TOP_MEMBER)],
        )
        conditions = {v.condition for v in d.violations()}
        assert "(C6) stratification" in conditions

    def test_c7_up_connectivity(self, chain_hierarchy):
        d = build(chain_hierarchy, {"d1": "Day"}, [])
        conditions = {v.condition for v in d.violations()}
        assert "(C7) up connectivity" in conditions

    def test_validate_raises_first_violation(self, chain_hierarchy):
        d = build(chain_hierarchy, {"d1": "Day"}, [])
        with pytest.raises(InstanceError):
            d.validate()

    def test_location_instance_is_fully_valid(self, loc_instance):
        assert loc_instance.violations() == []
