"""Tests for the compiled decision tier (artifact, store, engine).

Correctness anchors:

* verdict parity with the sequential kernel on every suite schema (the
  hot schemas the compiled tier exists for);
* witnesses materialize into valid, SIGMA-satisfying instances (the
  generated CHECK closures agree with the real semantics);
* compile failures (numeric categories, comparison-atom queries) fall
  back to the interpreted kernel, never a wrong or missing verdict;
* the engine's cache keys and audit records are byte-compatible with the
  sequential path, so ``audit-verify`` can replay a compiled run.
"""

from __future__ import annotations

import pytest

from repro.constraints import satisfies_all
from repro.constraints.ast import Not
from repro.constraints.parser import parse
from repro.core import (
    ALL,
    CompilationError,
    CompiledArtifactStore,
    CompiledDecisionEngine,
    ResilientDecisionEngine,
    compiled_artifact_store,
    dimsat,
    implies,
    is_summarizable_in_schema,
    resolve_engine,
)
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import DimsatOptions
from repro.errors import SchemaError
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.suite import suite_schemas


@pytest.fixture()
def engine():
    """A compiled engine with a private store and no decision cache, so
    every test decision really exercises the artifact."""
    return CompiledDecisionEngine(cache=None, store=CompiledArtifactStore())


@pytest.fixture(scope="module")
def schemas():
    return suite_schemas()


class TestVerdictParity:
    def test_dimsat_matches_sequential_on_suite(self, engine, schemas):
        for name, schema in schemas.items():
            for category in sorted(schema.hierarchy.categories):
                assert (
                    engine.dimsat(schema, category).satisfiable
                    == dimsat(schema, category).satisfiable
                ), (name, category)
        assert engine.stats.fallbacks == 0

    def test_implies_matches_sequential_on_suite(self, engine, schemas):
        for name, schema in schemas.items():
            for node in schema.constraints:
                assert (
                    engine.implies(schema, node).implied
                    == implies(schema, node).implied
                ), (name, node)
        assert engine.stats.fallbacks == 0

    def test_summarizable_matches_sequential(self, engine, schemas):
        schema = schemas["retail"]
        categories = sorted(schema.hierarchy.categories - {ALL})
        for target in categories:
            for source in categories:
                assert engine.is_summarizable(
                    schema, target, [source]
                ) == is_summarizable_in_schema(
                    schema, target, [source], cache=None
                ), (target, source)

    def test_textual_constraint_accepted(self, engine, schemas):
        schema = schemas["retail"]
        node = schema.constraints[0]
        from repro.constraints.printer import unparse

        text = unparse(node)
        assert engine.implies(schema, text).implied == implies(schema, text).implied


class TestWitnesses:
    def test_dimsat_witness_materializes(self, engine, schemas):
        for name, schema in schemas.items():
            for category in sorted(schema.hierarchy.categories - {ALL}):
                result = engine.dimsat(schema, category)
                if not result.satisfiable:
                    continue
                assert result.witness is not None
                assert result.witness.root == category
                instance = result.witness.to_instance(schema)
                assert instance.is_valid(), (name, category)
                assert satisfies_all(instance, schema.constraints), (name, category)

    def test_implication_counterexample_violates_query(self, engine, schemas):
        """A refuted implication's counterexample satisfies SIGMA but not
        the query (Theorem 2's witness contract)."""
        schema = schemas["retail"]
        query = parse("Store -> SaleRegion")
        result = engine.implies(schema, query)
        sequential = implies(schema, query)
        assert result.implied == sequential.implied
        assert not result.implied, "expected a refutable query for this test"
        instance = result.counterexample.to_instance(schema)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)
        assert not satisfies_all(instance, [query])


class TestDegradation:
    def test_numeric_schema_falls_back(self):
        config = RandomSchemaConfig(
            n_categories=5,
            numeric_fraction=1.0,
            attributed_fraction=1.0,
            equality_constraint_prob=1.0,
            seed=7,
        )
        schema = random_schema(config)
        engine = CompiledDecisionEngine(cache=None, store=CompiledArtifactStore())
        for category in sorted(schema.hierarchy.categories):
            assert (
                engine.dimsat(schema, category).satisfiable
                == dimsat(schema, category).satisfiable
            )
        assert engine.stats.fallbacks > 0
        assert engine.store.stats.compile_failures >= 1

    def test_failure_is_cached(self):
        config = RandomSchemaConfig(
            n_categories=4, numeric_fraction=1.0, attributed_fraction=1.0, seed=3
        )
        schema = random_schema(config)
        store = CompiledArtifactStore()
        with pytest.raises(CompilationError):
            store.get(schema)
        assert store.stats.compile_failures == 1
        with pytest.raises(CompilationError):
            store.get(schema)
        # Second rejection is a cache hit, not a re-compilation attempt.
        assert store.stats.compile_failures == 1
        assert store.stats.hits == 1

    def test_subhierarchy_limit_falls_back(self, schemas):
        schema = schemas["retail"]
        store = CompiledArtifactStore(max_subhierarchies=1)
        engine = CompiledDecisionEngine(cache=None, store=store)
        for category in sorted(schema.hierarchy.categories):
            assert (
                engine.dimsat(schema, category).satisfiable
                == dimsat(schema, category).satisfiable
            )

    def test_unknown_category_raises(self, engine, schemas):
        with pytest.raises(SchemaError):
            engine.dimsat(schemas["retail"], "Nope")

    def test_all_category_is_trivial(self, engine, schemas):
        result = engine.dimsat(schemas["retail"], ALL)
        assert result.satisfiable
        assert result.witness.root == ALL


class TestArtifactStore:
    def test_hit_miss_counters(self, schemas):
        store = CompiledArtifactStore()
        schema = schemas["time"]
        store.get(schema)
        assert (store.stats.hits, store.stats.misses) == (0, 1)
        store.get(schema)
        assert (store.stats.hits, store.stats.misses) == (1, 1)

    def test_invalidate_drops_artifact(self, schemas):
        store = CompiledArtifactStore()
        schema = schemas["time"]
        store.get(schema)
        assert len(store) == 1
        assert store.invalidate(schema) == 1
        assert len(store) == 0
        assert store.stats.invalidations == 1
        # Idempotent on a missing fingerprint.
        assert store.invalidate(schema) == 0
        assert store.stats.invalidations == 1

    def test_invalidate_accepts_fingerprint(self, schemas):
        store = CompiledArtifactStore()
        schema = schemas["time"]
        store.get(schema)
        assert store.invalidate(schema.fingerprint()) == 1

    def test_bounded_entries(self, schemas):
        store = CompiledArtifactStore(max_entries=2)
        for schema in list(schemas.values())[:3]:
            store.get(schema)
        assert len(store) == 2

    def test_report_lines(self, schemas):
        store = CompiledArtifactStore()
        store.get(schemas["time"])
        text = "\n".join(store.report_lines())
        assert "compiled artifacts:" in text
        assert "misses         1" in text

    def test_learned_clause_state_is_reused(self, schemas):
        """The same engine deciding the whole implication family of one
        schema funnels every query into one persistent per-root solver."""
        schema = schemas["retail"]
        store = CompiledArtifactStore()
        engine = CompiledDecisionEngine(cache=None, store=store)
        for node in schema.constraints:
            engine.implies(schema, node)
        artifact = store.get(schema)
        description = artifact.describe()
        assert description["roots_compiled"] >= 1
        total_queries = sum(
            root["queries"] for root in description["roots"].values()
        )
        assert total_queries >= 1

    def test_default_store_is_process_wide(self):
        assert compiled_artifact_store() is compiled_artifact_store()


class TestEngineIntegration:
    def test_decide_many_alignment(self, engine, schemas):
        schema = schemas["retail"]
        categories = sorted(schema.hierarchy.categories - {ALL})
        requests = [(schema, ("dimsat", c)) for c in categories]
        doubled = requests + list(reversed(requests))
        expected = [dimsat(schema, c).satisfiable for c in categories]
        assert engine.decide_many(doubled) == expected + list(reversed(expected))

    def test_try_decide_many_contains_errors(self, engine, schemas):
        schema = schemas["retail"]
        results = engine.try_decide_many(
            [(schema, ("dimsat", "Store")), (schema, ("dimsat", "Nope"))]
        )
        assert results[0] == dimsat(schema, "Store").satisfiable
        assert isinstance(results[1], SchemaError)

    def test_shares_decision_cache_keys_with_sequential(self, schemas):
        """A verdict cached by the sequential path is served to the
        compiled engine and vice versa - the tier changes the computation,
        not the cache identity."""
        from repro.core import is_category_satisfiable

        schema = schemas["time"]
        cache = DecisionCache()
        sequential = is_category_satisfiable(schema, "Day", cache=cache)
        engine = CompiledDecisionEngine(cache=cache, store=CompiledArtifactStore())
        hits_before = cache.stats.hits
        compiled = engine.dimsat(schema, "Day")
        assert cache.stats.hits == hits_before + 1
        assert compiled.satisfiable == sequential
        # No artifact was ever needed for the warm decision.
        assert engine.store.stats.misses == 0

    def test_resilient_wrapping(self, schemas):
        schema = schemas["retail"]
        engine = ResilientDecisionEngine(
            CompiledDecisionEngine(cache=None, store=CompiledArtifactStore())
        )
        assert (
            engine.dimsat(schema, "Store").satisfiable
            == dimsat(schema, "Store").satisfiable
        )
        outcomes = engine.decide_many_outcomes(
            [(schema, ("dimsat", "Store")), (schema, ("dimsat", "City"))]
        )
        assert [o.verdict for o in outcomes] == [
            dimsat(schema, "Store").satisfiable,
            dimsat(schema, "City").satisfiable,
        ]

    def test_resolve_engine_strings(self):
        assert isinstance(resolve_engine("compiled"), CompiledDecisionEngine)
        assert resolve_engine(None) is None
        sentinel = object()
        assert resolve_engine(sentinel) is sentinel

    def test_audit_records_are_replayable(self, schemas, tmp_path):
        """Compiled verdicts audit with empty options keys, so
        ``verify_audit_log`` replays them against the sequential kernel
        with zero divergences."""
        import json

        from repro.core.auditlog import AUDIT, verify_audit_log
        from repro.io.json_io import schema_to_json

        class CollectingSink:
            def __init__(self):
                self.records = []
                self.schemas = []

            def export_audit(self, record):
                self.records.append(record)

            def export_schema(self, fingerprint, schema_json):
                self.schemas.append((fingerprint, schema_json))

        schema = schemas["time"]
        sink = CollectingSink()
        AUDIT.attach(sink)
        try:
            engine = CompiledDecisionEngine(
                cache=None, store=CompiledArtifactStore()
            )
            for category in sorted(schema.hierarchy.categories - {ALL}):
                engine.dimsat(schema, category)
            engine.implies(schema, schema.constraints[0])
        finally:
            AUDIT.detach()
        assert sink.records
        assert all(record["options"] == [] for record in sink.records)
        (tmp_path / "audit.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in sink.records)
        )
        (tmp_path / "schemas.jsonl").write_text(
            json.dumps(
                {
                    "fingerprint": schema.fingerprint(),
                    "schema_json": schema_to_json(schema),
                }
            )
            + "\n"
        )
        report = verify_audit_log(str(tmp_path))
        assert report.ok
        assert report.divergences == []
        assert report.verified == len(sink.records)

    def test_options_pinned_to_none(self, engine):
        assert engine.options is None


class TestNavigatorViewselect:
    def test_navigator_accepts_compiled_string(self, schemas):
        from repro.core.instance import DimensionInstance
        from repro.olap.facttable import FactTable
        from repro.olap.navigator import AggregateNavigator
        from repro.generators.location import location_instance

        instance = location_instance()
        facts = FactTable(
            instance,
            [(m, {"amount": 1.0}) for m in instance.members("Store")],
        )
        navigator = AggregateNavigator(
            facts, schema=schemas["retail"], cache=None, engine="compiled"
        )
        assert isinstance(navigator.engine, CompiledDecisionEngine)

    def test_viewselect_accepts_compiled_string(self, schemas):
        from repro.olap.viewselect import ViewSelectionProblem, evaluate_selection

        schema = schemas["retail"]
        problem = ViewSelectionProblem(
            schema=schema,
            targets={"SaleRegion": 1.0, "Country": 1.0},
            view_sizes={"Store": 100, "City": 20, "SaleRegion": 5, "Country": 3},
            base_size=100,
        )
        with_engine = evaluate_selection(
            problem, {"City"}, cache=None, engine="compiled"
        )
        without = evaluate_selection(problem, {"City"}, cache=None)
        assert with_engine.answerable == without.answerable
        assert with_engine.query_cost == without.query_cost
