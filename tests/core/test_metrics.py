"""Metrics registry tests: counters, gauges, histograms, snapshots."""

from __future__ import annotations

import json
import threading

from repro.core.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    emit_metrics,
    metrics_registry,
)


class TestCounter:
    def test_counts_monotonically(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.as_json() == 5

    def test_thread_safe_under_contention(self):
        c = Counter("c")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_inc_adjusts(self):
        g = Gauge("g")
        g.inc(2.0)
        g.inc(-0.5)
        assert g.value == 1.5


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            h.observe(value)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert h.min == 1.0 and h.max == 4.0

    def test_quantiles_from_the_reservoir(self):
        h = Histogram("h")
        for value in range(1, 101):
            h.observe(float(value))
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0
        assert h.quantile(0.5) in (50.0, 51.0)

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean is None
        assert h.quantile(0.5) is None
        data = h.as_json()
        assert data["count"] == 0 and data["p95"] is None

    def test_reservoir_is_bounded_but_aggregates_stay_exact(self):
        h = Histogram("h", reservoir=16)
        for value in range(1000):
            h.observe(float(value))
        assert h.count == 1000
        assert h.min == 0.0 and h.max == 999.0
        # Quantiles reflect only the most recent window.
        assert h.quantile(0.0) >= 984.0

    def test_as_json_carries_p99_and_reservoir_dropped(self):
        h = Histogram("h", reservoir=16)
        for value in range(1, 101):
            h.observe(float(value))
        data = h.as_json()
        assert data["p99"] == h.quantile(0.99)
        # 100 observations into a 16-slot reservoir: 84 fell out, and
        # the snapshot advertises the quantile bias instead of hiding it.
        assert data["reservoir_dropped"] == 84
        assert h.reservoir_dropped == 84

    def test_unbounded_reservoir_reports_zero_dropped(self):
        h = Histogram("h")
        for value in (1.0, 2.0):
            h.observe(value)
        assert h.as_json()["reservoir_dropped"] == 0


class TestRegistry:
    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("wait_ms").observe(1.25)
        document = json.loads(registry.to_json())
        assert document == registry.snapshot()
        assert document["counters"] == {"hits": 3}
        assert document["gauges"] == {"depth": 2.5}
        assert document["histograms"]["wait_ms"]["count"] == 1

    def test_reset_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_process_wide_registry_is_a_singleton(self):
        assert metrics_registry() is METRICS


class TestEmit:
    def test_emit_metrics_writes_valid_json(self, tmp_path):
        METRICS.counter("test_metrics.emitted").inc()
        path = tmp_path / "metrics.json"
        snapshot = emit_metrics(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk == snapshot
        assert on_disk["counters"]["test_metrics.emitted"] >= 1

    def test_emit_metrics_creates_parent_directories(self, tmp_path):
        path = tmp_path / "ci" / "artifacts" / "metrics.json"
        snapshot = emit_metrics(str(path))
        assert json.loads(path.read_text()) == snapshot

    def test_kernel_work_lands_in_the_registry(self):
        from repro.core.dimsat import dimsat
        from repro.generators.random_schema import (
            RandomSchemaConfig,
            schemas_by_size,
        )

        before = METRICS.counter("dimsat.decisions").value
        schema = schemas_by_size([5], RandomSchemaConfig(seed=11))[5]
        bottoms = sorted(schema.hierarchy.bottom_categories())
        dimsat(schema, bottoms[0])
        assert METRICS.counter("dimsat.decisions").value == before + 1
