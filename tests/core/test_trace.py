"""Decision-trace layer tests: spans, events, ring buffers, and the
zero-overhead / never-changes-a-verdict guarantees."""

from __future__ import annotations

import json
import threading

from repro._types import ALL
from repro.core.dimsat import dimsat
from repro.core.implication import is_implied
from repro.core.summarizability import is_summarizable_in_schema
from repro.core.trace import NULL_SPAN, TRACER, Tracer, tracer, tracing
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.workloads import (
    implication_workload,
    summarizability_workload,
)


class TestSpans:
    def test_spans_nest_and_record_parents(self):
        t = Tracer()
        t.enable()
        with t.span("outer", a=1) as outer:
            with t.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = t.spans()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attrs"] == {"a": 1}

    def test_spans_time_with_the_monotonic_clock(self):
        t = Tracer()
        t.enable()
        with t.span("outer"):
            with t.span("inner"):
                pass
        inner, outer = t.spans()
        assert inner["name"] == "inner" and outer["name"] == "outer"
        for span in (inner, outer):
            assert span["duration_ms"] >= 0.0
            assert span["start_ms"] >= 0.0
        # The inner span starts after and finishes within the outer one.
        assert inner["start_ms"] >= outer["start_ms"]
        assert inner["duration_ms"] <= outer["duration_ms"]

    def test_span_records_errors(self):
        t = Tracer()
        t.enable()
        try:
            with t.span("failing"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = t.spans()
        assert span["error"] == "ValueError"

    def test_events_attach_to_the_innermost_open_span(self):
        t = Tracer()
        t.enable()
        with t.span("outer") as outer:
            t.event("hit", value=3)
        t.event("orphan")
        events = t.events()
        assert events[0]["span_id"] == outer.span_id
        assert events[0]["attrs"] == {"value": 3}
        assert events[1]["span_id"] is None

    def test_span_set_updates_attributes(self):
        t = Tracer()
        t.enable()
        with t.span("s", a=1) as span:
            span.set(verdict=True, a=2)
        (recorded,) = t.spans()
        assert recorded["attrs"] == {"a": 2, "verdict": True}

    def test_threads_get_independent_span_stacks(self):
        t = Tracer()
        t.enable()
        seen = {}

        def worker():
            with t.span("worker") as span:
                seen["parent"] = span.parent_id

        with t.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The worker's span is a root in its own thread, not a child of
        # the main thread's open span.
        assert seen["parent"] is None


class TestDisabledTracer:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False
        assert TRACER is tracer()

    def test_disabled_span_is_the_shared_null_singleton(self):
        t = Tracer()
        assert t.span("anything", a=1) is NULL_SPAN
        with t.span("anything") as span:
            span.set(ignored=True)
            span.event("ignored")
            assert span.span_id is None
        assert t.spans() == []
        assert t.events() == []

    def test_disabled_event_records_nothing(self):
        t = Tracer()
        t.event("ignored", a=1)
        assert t.events() == []


class TestRingBuffer:
    def test_spans_and_events_are_bounded(self):
        t = Tracer(max_entries=8)
        t.enable()
        for i in range(50):
            with t.span(f"s{i}"):
                pass
            t.event(f"e{i}")
        spans, events = t.spans(), t.events()
        assert len(spans) == 8 and len(events) == 8
        # Oldest dropped first: only the most recent entries remain.
        assert spans[-1]["name"] == "s49"
        assert events[-1]["name"] == "e49"

    def test_overflow_is_counted_and_surfaced_in_the_snapshot(self):
        t = Tracer(max_entries=8)
        t.enable()
        for i in range(50):
            with t.span(f"s{i}"):
                pass
            t.event(f"e{i}")
        assert t.dropped_spans == 42
        assert t.dropped_events == 42
        snapshot = t.snapshot()
        assert snapshot["dropped_spans"] == 42
        assert snapshot["dropped_events"] == 42

    def test_clear_resets_the_drop_counters(self):
        t = Tracer(max_entries=2)
        t.enable()
        for i in range(5):
            with t.span(f"s{i}"):
                pass
        assert t.dropped_spans == 3
        t.clear()
        assert t.dropped_spans == 0 and t.dropped_events == 0


class TestSpanSink:
    class Sink:
        def __init__(self):
            self.spans = []
            self.events = []

        def export_span(self, span):
            self.spans.append(span)

        def export_event(self, event):
            self.events.append(event)

    def test_finished_spans_stream_to_the_sink_as_objects(self):
        from repro.core.trace import TraceSpan

        t = Tracer()
        t.enable()
        t.sink = sink = self.Sink()
        with t.span("outer"):
            t.event("hit", value=1)
        # The sink gets the finished TraceSpan itself (serialization is
        # the sink's business, off the instrumented thread) but the
        # JSON-ready event dict (the tracer builds it anyway).
        (span,) = sink.spans
        assert isinstance(span, TraceSpan)
        assert span.as_dict()["name"] == "outer"
        (event,) = sink.events
        assert event["name"] == "hit" and event["attrs"] == {"value": 1}

    def test_no_sink_costs_nothing_and_records_normally(self):
        t = Tracer()
        t.enable()
        assert t.sink is None
        with t.span("s"):
            pass
        assert [s["name"] for s in t.spans()] == ["s"]


class TestSnapshot:
    def test_snapshot_round_trips_through_json(self):
        t = Tracer()
        t.enable()
        with t.span("outer", views=frozenset({"b", "a"})) as span:
            span.event("hit", count=2)
            with t.span("inner"):
                pass
        document = json.loads(t.to_json())
        assert document == t.snapshot()
        assert {s["name"] for s in document["spans"]} == {"outer", "inner"}
        # Non-primitive attributes are coerced to sorted string lists.
        (outer,) = [s for s in document["spans"] if s["name"] == "outer"]
        assert outer["attrs"] == {"views": ["a", "b"]}

    def test_summary_aggregates_per_name(self):
        t = Tracer()
        t.enable()
        for _ in range(3):
            with t.span("repeated"):
                pass
        summary = t.summary()
        assert summary["repeated"]["count"] == 3
        assert summary["repeated"]["total_ms"] >= summary["repeated"]["max_ms"]

    def test_clear_drops_everything(self):
        t = Tracer()
        t.enable()
        with t.span("s"):
            t.event("e")
        t.clear()
        assert t.spans() == [] and t.events() == []


class TestTracingContextManager:
    def test_tracing_enables_then_restores(self):
        assert TRACER.enabled is False
        with tracing() as t:
            assert t is TRACER and t.enabled
        assert TRACER.enabled is False

    def test_tracing_preserves_an_already_enabled_tracer(self):
        TRACER.enable()
        try:
            with tracing():
                pass
            assert TRACER.enabled is True
        finally:
            TRACER.disable()
            TRACER.clear()


#: The PR 2 differential-schema shapes (every generator knob exercised),
#: pinned to fixed seeds so the on/off comparison is deterministic.
DIFFERENTIAL_CONFIGS = [
    RandomSchemaConfig(
        n_categories=n,
        n_layers=layers,
        extra_edge_prob=extra,
        into_fraction=into,
        choice_constraint_prob=choice,
        seed=seed,
    )
    for n, layers, extra, into, choice, seed in [
        (4, 2, 0.0, 0.5, 0.7, 1),
        (5, 2, 0.3, 1.0, 0.0, 2),
        (6, 3, 0.6, 0.5, 0.7, 11),
        (6, 3, 0.3, 0.0, 0.7, 880),
        (7, 3, 0.4, 0.5, 0.7, 17),
    ]
]


def _decide_all(schema):
    """Every decision kind over one schema, uncached, as one verdict list."""
    verdicts = []
    for category in sorted(schema.hierarchy.categories - {ALL}):
        verdicts.append(dimsat(schema, category).satisfiable)
    for query in implication_workload(schema, n_queries=6, seed=5):
        verdicts.append(is_implied(schema, query, cache=None))
    for target, sources in summarizability_workload(schema, n_queries=6, seed=5):
        verdicts.append(
            is_summarizable_in_schema(schema, target, sources, cache=None)
        )
    return verdicts


class TestTracingIsObservationOnly:
    def test_verdicts_byte_identical_with_tracing_on(self):
        """Enabling the tracer never changes any decision's verdict."""
        for config in DIFFERENTIAL_CONFIGS:
            schema = random_schema(config)
            baseline = json.dumps(_decide_all(schema)).encode()
            with tracing() as t:
                traced = json.dumps(_decide_all(schema)).encode()
                assert t.spans(), config.seed  # the run really was traced
            assert traced == baseline, config.seed

    def test_traced_run_records_the_documented_span_names(self):
        schema = random_schema(DIFFERENTIAL_CONFIGS[2])
        with tracing() as t:
            _decide_all(schema)
            names = {s["name"] for s in t.spans()}
        assert "dimsat.decide" in names
        assert "implication.decide" in names
        assert "summarizability.decide" in names
        assert "summarizability.bottom" in names
