"""Frozen dimension and subhierarchy tests (Definitions 5 and 7)."""

from __future__ import annotations

import pytest

from repro.constraints import satisfies_all
from repro.core import (
    ALL,
    DimensionSchema,
    FrozenDimension,
    HierarchySchema,
    NK,
    Subhierarchy,
    phi,
    subhierarchy_from_edges,
)
from repro.errors import SchemaError
from repro.generators.location import paper_frozen_structures


class TestSubhierarchyStructure:
    def test_parents_children_in(self):
        sub = paper_frozen_structures()["Canada"]
        assert sub.parents_in("City") == frozenset({"Province"})
        assert sub.children_in("SaleRegion") == frozenset({"Province"})

    def test_reaches(self):
        sub = paper_frozen_structures()["Canada"]
        assert sub.reaches("Store", "Country")
        assert sub.reaches("Store", "Store")
        assert not sub.reaches("Country", "Store")

    def test_has_edge_path(self):
        sub = paper_frozen_structures()["Canada"]
        assert sub.has_edge_path(("Store", "City", "Province"))
        assert not sub.has_edge_path(("Store", "City", "State"))

    def test_acyclic_and_shortcut_free(self):
        for sub in paper_frozen_structures().values():
            assert sub.is_acyclic()
            assert sub.shortcut_edges() == frozenset()

    def test_shortcut_detection(self):
        sub = subhierarchy_from_edges(
            "A",
            [("A", "B"), ("B", "C"), ("A", "C"), ("C", ALL)],
        )
        assert sub.shortcut_edges() == frozenset({("A", "C")})

    def test_cycle_detection(self):
        sub = Subhierarchy(
            "A",
            frozenset({"A", "B", "C", ALL}),
            frozenset([("A", "B"), ("B", "C"), ("C", "B"), ("C", ALL)]),
        )
        assert not sub.is_acyclic()

    def test_str_is_canonical(self):
        sub = paper_frozen_structures()["Mexico"]
        assert str(sub).startswith("Subhierarchy[Store:")


class TestSubhierarchyValidation:
    def test_paper_structures_validate(self, loc_hierarchy):
        for sub in paper_frozen_structures().values():
            sub.validate(loc_hierarchy)

    def test_must_contain_root_and_all(self, loc_hierarchy):
        bad = Subhierarchy("Store", frozenset({"Store"}), frozenset())
        with pytest.raises(SchemaError):
            bad.validate(loc_hierarchy)

    def test_edges_must_exist_in_g(self, loc_hierarchy):
        bad = subhierarchy_from_edges(
            "Store", [("Store", "Country"), ("Country", ALL)]
        )
        with pytest.raises(SchemaError):
            bad.validate(loc_hierarchy)

    def test_categories_between_root_and_all(self, loc_hierarchy):
        # Province is not reachable from the root here.
        bad = Subhierarchy(
            "Store",
            frozenset({"Store", "City", "Province", "Country", ALL}),
            frozenset([("Store", "City"), ("City", "Country"), ("Country", ALL)]),
        )
        with pytest.raises(SchemaError):
            bad.validate(loc_hierarchy)

    def test_every_category_must_reach_all(self, loc_hierarchy):
        bad = Subhierarchy(
            "Store",
            frozenset({"Store", "City", ALL}),
            frozenset([("Store", "City")]),
        )
        with pytest.raises(SchemaError):
            bad.validate(loc_hierarchy)


class TestFrozenDimension:
    def test_phi_is_stable(self):
        assert phi("Store") == "phi(Store)"
        assert phi(ALL) == "all"

    def test_name_of_defaults_to_nk(self):
        frozen = FrozenDimension(paper_frozen_structures()["Canada"], {})
        assert frozen.name_of("Country") == NK

    def test_to_instance_is_valid_and_satisfies_sigma(self, loc_schema):
        sub = paper_frozen_structures()["Canada"]
        frozen = FrozenDimension(sub, {"Country": "Canada"})
        instance = frozen.to_instance(loc_schema)
        assert instance.is_valid()
        assert satisfies_all(instance, loc_schema.constraints)

    def test_to_instance_one_member_per_category(self, loc_schema):
        sub = paper_frozen_structures()["Mexico"]
        frozen = FrozenDimension(sub, {"Country": "Mexico"})
        instance = frozen.to_instance(loc_schema)
        for category in sub.categories:
            assert len(instance.members(category)) == 1
        assert len(instance.members("Province")) == 0

    def test_nk_materializes_to_fresh_constant(self, loc_schema):
        sub = paper_frozen_structures()["Canada"]
        frozen = FrozenDimension(sub, {"Country": "Canada"})
        instance = frozen.to_instance(loc_schema)
        city_name = instance.name(phi("City"))
        assert city_name not in {"Washington", "Canada", "Mexico", "USA"}

    def test_fresh_constant_avoids_mentions(self):
        g = HierarchySchema(["A", "B"], [("A", "B"), ("B", ALL)])
        ds = DimensionSchema(g, ["A.B = 'nk' or A.B = 'nk_1'"])
        sub = subhierarchy_from_edges("A", [("A", "B"), ("B", ALL)])
        frozen = FrozenDimension(sub, {})
        instance = frozen.to_instance(ds)
        assert instance.name(phi("B")) == "nk_2"

    def test_explicit_fresh_constant(self, loc_schema):
        sub = paper_frozen_structures()["Mexico"]
        frozen = FrozenDimension(sub, {"Country": "Mexico"})
        instance = frozen.to_instance(loc_schema, fresh_constant="OTHER")
        assert instance.name(phi("City")) == "OTHER"

    def test_describe_mentions_pinned_names(self):
        frozen = FrozenDimension(
            paper_frozen_structures()["USA-Washington"],
            {"City": "Washington", "Country": "USA"},
        )
        text = frozen.describe()
        assert "City=Washington" in text
        assert "Country=USA" in text
