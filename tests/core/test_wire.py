"""Wire-protocol framing: round trips, partial reads, malformed frames."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.core.wire import (
    MAX_FRAME_BYTES,
    WireError,
    decode_frame,
    encode_frame,
    error_response,
    read_frame,
    read_frame_async,
    write_frame,
)


class TestEncodeDecode:
    def test_round_trip(self):
        document = {"op": "decide", "request": ["dimsat", "Store"], "id": 7}
        assert decode_frame(encode_frame(document)[4:]) == document

    def test_frame_is_length_prefixed(self):
        frame = encode_frame({"op": "ping"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_unicode_survives(self):
        document = {"op": "echo", "text": "Σ∘H ⊨ α"}
        assert decode_frame(encode_frame(document)[4:]) == document

    def test_non_object_payload_rejected(self):
        with pytest.raises(WireError):
            decode_frame(b"[1, 2, 3]")
        with pytest.raises(WireError):
            encode_frame(["not", "an", "object"])  # type: ignore[arg-type]

    def test_garbage_payload_rejected(self):
        with pytest.raises(WireError):
            decode_frame(b"\xff\xfe not json")

    def test_error_response_shape(self):
        response = error_response("decide", ValueError("boom"), id=3)
        assert response["status"] == "error"
        assert response["error_type"] == "ValueError"
        assert response["error"] == "boom"
        assert response["id"] == 3
        assert error_response("x", "bad frame")["error_type"] == "ProtocolError"


def _socket_pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestBlockingFraming:
    def test_round_trip_over_socketpair(self):
        left, right = _socket_pair()
        try:
            write_frame(left, {"op": "stats"})
            assert read_frame(right) == {"op": "stats"}
        finally:
            left.close()
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = _socket_pair()
        left.close()
        try:
            assert read_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_hangup_raises(self):
        left, right = _socket_pair()
        try:
            frame = encode_frame({"op": "decide", "blob": "x" * 4096})
            left.sendall(frame[: len(frame) // 2])
            left.close()
            with pytest.raises(WireError):
                read_frame(right)
        finally:
            right.close()

    def test_oversized_announced_length_rejected_before_buffering(self):
        left, right = _socket_pair()
        try:
            left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(WireError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_split_delivery_reassembles(self):
        left, right = _socket_pair()
        try:
            frame = encode_frame({"op": "decide", "payload": "y" * 1000})
            received = {}

            def reader():
                received["doc"] = read_frame(right)

            thread = threading.Thread(target=reader)
            thread.start()
            for i in range(0, len(frame), 97):
                left.sendall(frame[i : i + 97])
            thread.join(timeout=5.0)
            assert received["doc"]["payload"] == "y" * 1000
        finally:
            left.close()
            right.close()


class TestAsyncFraming:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_async_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "navigate", "target": "City"}))
            reader.feed_eof()
            first = await read_frame_async(reader)
            second = await read_frame_async(reader)
            return first, second

        first, second = self._run(scenario())
        assert first == {"op": "navigate", "target": "City"}
        assert second is None

    def test_async_mid_header_hangup(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")
            reader.feed_eof()
            await read_frame_async(reader)

        with pytest.raises(WireError):
            self._run(scenario())

    def test_async_mid_payload_hangup(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = encode_frame({"op": "stats"})
            reader.feed_data(frame[:-2])
            reader.feed_eof()
            await read_frame_async(reader)

        with pytest.raises(WireError):
            self._run(scenario())

    def test_async_oversized_rejected(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME_BYTES + 1))
            await read_frame_async(reader)

        with pytest.raises(WireError):
            self._run(scenario())
