"""DimensionSchema tests: constraint validation, Const_ds, into
constraints, and SIGMA(ds, c)."""

from __future__ import annotations

import pytest

from repro.constraints import PathAtom, parse
from repro.core import ALL, DimensionSchema, HierarchySchema, NK
from repro.errors import ConstraintError


class TestConstruction:
    def test_accepts_text_and_ast(self, loc_hierarchy):
        ds = DimensionSchema(
            loc_hierarchy,
            ["Store -> City", PathAtom("Store", ("SaleRegion",))],
        )
        assert len(ds.constraints) == 2

    def test_rejects_invalid_constraint(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            DimensionSchema(loc_hierarchy, ["Store -> Country"])  # not an edge

    def test_rejects_constraint_rooted_at_all(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            DimensionSchema(loc_hierarchy, ["All = 'x'"])

    def test_roots_aligned_with_constraints(self, loc_schema):
        roots = loc_schema.roots()
        assert roots == ("Store", "Store", "City", "City", "State", "State", "Province")


class TestConstants:
    def test_const_map_by_target_category(self, loc_schema):
        assert loc_schema.constants("Country") == frozenset(
            {"Canada", "Mexico", "USA"}
        )
        assert loc_schema.constants("City") == frozenset({"Washington"})
        assert loc_schema.constants("Store") == frozenset()

    def test_constant_domain_order_and_nk(self, loc_schema):
        domain = loc_schema.constant_domain("Country")
        assert domain == ("Canada", "Mexico", "USA", NK)
        assert loc_schema.constant_domain("Store") == (NK,)

    def test_max_constants(self, loc_schema):
        assert loc_schema.max_constants() == 3


class TestIntoConstraints:
    def test_into_targets(self, loc_schema):
        assert loc_schema.into_targets("Store") == frozenset({"City"})
        assert loc_schema.into_targets("City") == frozenset()

    def test_into_requires_whole_constraint(self, loc_hierarchy):
        # A path atom inside a bigger formula is not an into constraint.
        ds = DimensionSchema(
            loc_hierarchy, ["Store -> City or Store -> SaleRegion"]
        )
        assert ds.into_targets("Store") == frozenset()

    def test_into_must_be_single_step(self, loc_hierarchy):
        ds = DimensionSchema(loc_hierarchy, ["Store -> City -> Province"])
        assert ds.into_targets("Store") == frozenset()


class TestRelevantConstraints:
    def test_sigma_ds_store_is_everything(self, loc_schema):
        # Every constraint root is reachable from Store (Figure 5 left).
        assert len(loc_schema.relevant_constraints("Store")) == 7

    def test_sigma_ds_province(self, loc_schema):
        relevant = loc_schema.relevant_constraints("Province")
        assert [str(n) for n in relevant] == ["Province.Country = 'Canada'"]

    def test_sigma_ds_country_empty(self, loc_schema):
        assert loc_schema.relevant_constraints("Country") == ()


class TestDerivation:
    def test_with_constraints(self, loc_schema):
        bigger = loc_schema.with_constraints(["Store -> SaleRegion"])
        assert len(bigger.constraints) == 8
        assert len(loc_schema.constraints) == 7

    def test_size_counts_nodes(self, loc_hierarchy):
        small = DimensionSchema(loc_hierarchy, ["Store -> City"])
        large = DimensionSchema(
            loc_hierarchy, ["Store -> City and Store -> SaleRegion"]
        )
        assert small.size() == 1
        assert large.size() == 3

    def test_repr(self, loc_schema):
        assert "7 constraints" in repr(loc_schema)
