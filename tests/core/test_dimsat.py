"""DIMSAT tests: the circle operator, c-assignments, the EXPAND search,
options, stats, and the trace."""

from __future__ import annotations

import pytest

from repro.constraints import FALSE, TRUE, parse, satisfies_all
from repro.core import (
    ALL,
    DimensionSchema,
    DimsatOptions,
    HierarchySchema,
    NK,
    SearchBudgetExceeded,
    circle,
    circle_node,
    dimsat,
    enumerate_frozen_dimensions,
    induced_frozen_dimensions,
    reduced_constraints,
    satisfying_assignments,
    subhierarchy_from_edges,
)
from repro.errors import SchemaError
from repro.generators.location import paper_frozen_structures


class TestCircleOperator:
    def test_path_atom_true_when_edges_present(self):
        sub = paper_frozen_structures()["Canada"]
        assert circle_node(parse("Store -> City"), sub) == TRUE
        assert circle_node(parse("Store -> City -> Province"), sub) == TRUE

    def test_path_atom_false_when_edge_missing(self):
        sub = paper_frozen_structures()["Canada"]
        assert circle_node(parse("Store -> SaleRegion"), sub) == FALSE
        assert circle_node(parse("City -> State"), sub) == FALSE

    def test_composed_atoms_resolved_by_reachability(self):
        sub = paper_frozen_structures()["Canada"]
        assert circle_node(parse("Store.SaleRegion"), sub) == TRUE
        assert circle_node(parse("Store.State.Country"), sub) == FALSE
        assert circle_node(parse("Store.Province.Country"), sub) == TRUE

    def test_equality_atom_kept_when_reachable(self):
        sub = paper_frozen_structures()["Canada"]
        node = parse("Province.Country = 'Canada'")
        assert circle_node(node, sub) == node

    def test_equality_atom_false_when_unreachable(self):
        sub = paper_frozen_structures()["Canada"]
        assert circle_node(parse("State.Country = 'Mexico'"), sub) == FALSE

    def test_self_equality_kept_when_root_present(self):
        sub = paper_frozen_structures()["USA-Washington"]
        node = parse("City = 'Washington'")
        assert circle_node(node, sub) == node

    def test_connectives_survive_with_rewritten_atoms(self):
        sub = paper_frozen_structures()["Canada"]
        node = parse("City = 'Washington' iff City -> Country")
        reduced = circle_node(node, sub)
        assert str(reduced) == "City = 'Washington' iff false"

    def test_circle_over_whole_sigma(self, loc_schema):
        sub = paper_frozen_structures()["Canada"]
        reduced = circle(loc_schema.constraints, sub)
        assert len(reduced) == len(loc_schema.constraints)


class TestReducedConstraints:
    def test_vacuous_roots_dropped(self, loc_schema):
        sub = paper_frozen_structures()["Canada"]
        residual = reduced_constraints(loc_schema, "Store", sub)
        # (c) folds to "City is not Washington"; (d) keeps its equality
        # atoms (a City -> ... -> Country path exists); (g) survives whole.
        assert residual is not None
        rendered = sorted(str(n) for n in residual)
        assert rendered == [
            "City = 'Washington' implies City.Country = 'USA'",
            "Province.Country = 'Canada'",
            "not City = 'Washington'",
        ]

    def test_contradiction_returns_none(self, loc_schema):
        # Store -> City only, no SaleRegion anywhere: constraint (b) fails.
        sub = subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("City", "Country"),
                ("Country", ALL),
            ],
        )
        assert reduced_constraints(loc_schema, "Store", sub) is None

    def test_mixed_state_province_contradiction_found_by_assignment(
        self, loc_schema
    ):
        from repro.generators.location import figure5_subhierarchy

        sub = figure5_subhierarchy()
        residual = reduced_constraints(loc_schema, "Store", sub)
        assert residual is not None  # syntactically fine...
        # ...but no c-assignment satisfies it (Canada vs Mexico/USA clash).
        assert list(satisfying_assignments(loc_schema, residual)) == []


class TestSatisfyingAssignments:
    def test_unique_assignment_for_canada(self, loc_schema):
        sub = paper_frozen_structures()["Canada"]
        residual = reduced_constraints(loc_schema, "Store", sub)
        found = list(satisfying_assignments(loc_schema, residual))
        assert found == [{"City": NK, "Country": "Canada"}]

    def test_no_residual_means_single_empty_assignment(self, loc_schema):
        found = list(satisfying_assignments(loc_schema, []))
        assert found == [{}]

    def test_rejects_non_equality_residual(self, loc_schema):
        with pytest.raises(SchemaError):
            list(satisfying_assignments(loc_schema, [parse("Store -> City")]))


class TestInducedFrozenDimensions:
    def test_each_paper_structure_induces_exactly_one(self, loc_schema):
        for name, sub in paper_frozen_structures().items():
            found = list(induced_frozen_dimensions(loc_schema, "Store", sub))
            assert len(found) == 1, name

    def test_structure_check_rejects_shortcut(self, loc_schema):
        sub = subhierarchy_from_edges(
            "Store",
            [
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "State"),
                ("State", "SaleRegion"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            ],
        )
        assert sub.shortcut_edges()
        found = list(
            induced_frozen_dimensions(
                loc_schema, "Store", sub, require_structure=True
            )
        )
        assert found == []


class TestDimsat:
    def test_store_satisfiable(self, loc_schema):
        result = dimsat(loc_schema, "Store")
        assert result.satisfiable
        assert result.witness is not None
        assert result.witness.root == "Store"

    def test_every_location_category_satisfiable(self, loc_schema):
        for category in loc_schema.hierarchy.categories:
            assert dimsat(loc_schema, category).satisfiable, category

    def test_all_is_trivially_satisfiable(self, loc_schema):
        result = dimsat(loc_schema, ALL)
        assert result.satisfiable
        assert result.stats.expand_calls == 0

    def test_unknown_category_rejected(self, loc_schema):
        with pytest.raises(SchemaError):
            dimsat(loc_schema, "Galaxy")

    def test_example_11_unsatisfiable_saleregion(self, loc_schema):
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        assert not dimsat(extended, "SaleRegion").satisfiable

    def test_witness_materializes_to_valid_instance(self, loc_schema):
        result = dimsat(loc_schema, "Store")
        instance = result.witness.to_instance(loc_schema)
        assert instance.is_valid()
        assert satisfies_all(instance, loc_schema.constraints)

    def test_stats_populated(self, loc_schema):
        result = dimsat(loc_schema, "Store")
        assert result.stats.expand_calls > 0
        assert result.stats.check_calls > 0

    def test_budget_exhaustion_raises(self, loc_schema):
        extended = loc_schema.with_constraints(["not Store -> City"])
        options = DimsatOptions(max_expansions=1)
        with pytest.raises(SearchBudgetExceeded):
            dimsat(extended, "Store", options)


class TestEnumeration:
    def test_figure4_set(self, loc_schema):
        found = enumerate_frozen_dimensions(loc_schema, "Store")
        assert len(found) == 4
        subs = {f.subhierarchy for f in found}
        assert subs == set(paper_frozen_structures().values())

    def test_enumeration_of_all(self, loc_schema):
        found = enumerate_frozen_dimensions(loc_schema, ALL)
        assert len(found) == 1

    def test_unsat_category_enumerates_empty(self, loc_schema):
        extended = loc_schema.with_constraints(["not Store -> City"])
        assert enumerate_frozen_dimensions(extended, "Store") == []


class TestOptions:
    @pytest.mark.parametrize(
        "options",
        [
            DimsatOptions(into_pruning=False),
            DimsatOptions(shortcut_pruning=False, cycle_pruning=False),
            DimsatOptions(
                into_pruning=False, shortcut_pruning=False, cycle_pruning=False
            ),
            DimsatOptions(choice="lifo"),
        ],
    )
    def test_ablations_preserve_answers(self, loc_schema, options):
        baseline = {
            category: dimsat(loc_schema, category).satisfiable
            for category in loc_schema.hierarchy.categories
        }
        for category, expected in baseline.items():
            assert dimsat(loc_schema, category, options).satisfiable == expected

    def test_ablations_preserve_enumeration(self, loc_schema):
        expected = {
            f.subhierarchy for f in enumerate_frozen_dimensions(loc_schema, "Store")
        }
        options = DimsatOptions(
            into_pruning=False, shortcut_pruning=False, cycle_pruning=False
        )
        found = {
            f.subhierarchy
            for f in enumerate_frozen_dimensions(loc_schema, "Store", options)
        }
        assert found == expected

    def test_into_pruning_reduces_work(self, loc_schema):
        fast = dimsat(loc_schema, "Store").stats.expand_calls
        slow = dimsat(
            loc_schema, "Store", DimsatOptions(into_pruning=False)
        ).stats.expand_calls
        assert fast <= slow

    def test_unknown_choice_rejected(self, loc_schema):
        with pytest.raises(SchemaError):
            dimsat(loc_schema, "Store", DimsatOptions(choice="random"))


class TestTrace:
    def test_trace_disabled_by_default(self, loc_schema):
        assert dimsat(loc_schema, "Store").trace == []

    def test_trace_records_expansions_and_checks(self, loc_schema):
        options = DimsatOptions(keep_trace=True)
        result = dimsat(loc_schema, "Store", options)
        kinds = [entry.kind for entry in result.trace]
        assert "expand" in kinds
        assert kinds[-1] == "check"
        assert result.trace[-1].succeeded is True

    def test_trace_edges_grow_monotonically_along_expansions(self, loc_schema):
        options = DimsatOptions(keep_trace=True)
        result = dimsat(loc_schema, "Store", options)
        previous: set = set()
        for entry in result.trace:
            if entry.kind != "expand":
                continue
            edges = set(entry.edges)
            if previous <= edges:
                previous = edges
            else:
                previous = edges  # a backtrack: edge set may shrink
        assert result.trace[0].edges == ()
