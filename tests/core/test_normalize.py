"""Schema-normalization tests: redundancy, minimization, implied intos."""

from __future__ import annotations

import pytest

from repro.core import (
    DimensionSchema,
    DimsatOptions,
    HierarchySchema,
    dimsat,
    enumerate_frozen_dimensions,
)
from repro.core.normalize import (
    implied_into_edges,
    minimize,
    redundant_constraints,
    strengthen_with_intos,
)


class TestRedundancy:
    def test_duplicate_constraint_detected(self, loc_schema):
        doubled = loc_schema.with_constraints(["Store -> City"])
        redundant = redundant_constraints(doubled)
        # Both copies of (a) are implied by "the rest" individually.
        assert 0 in redundant
        assert len(loc_schema.constraints) in redundant

    def test_weaker_constraint_detected(self, loc_schema):
        extended = loc_schema.with_constraints(["Store.City"])  # weaker than (a)
        redundant = redundant_constraints(extended)
        assert len(loc_schema.constraints) in redundant

    def test_location_schema_has_no_redundancy(self, loc_schema):
        assert redundant_constraints(loc_schema) == []


class TestMinimize:
    def test_drops_duplicates_keeps_semantics(self, loc_schema):
        doubled = loc_schema.with_constraints(
            ["Store -> City", "Store.SaleRegion", "Province.Country = 'Canada'"]
        )
        minimized, dropped = minimize(doubled)
        assert len(dropped) == 3
        assert len(minimized.constraints) == len(loc_schema.constraints)
        # Same models: the frozen-dimension sets coincide.
        before = {f.subhierarchy for f in enumerate_frozen_dimensions(doubled, "Store")}
        after = {
            f.subhierarchy for f in enumerate_frozen_dimensions(minimized, "Store")
        }
        assert before == after

    def test_mutually_implying_pair_keeps_one(self):
        g = HierarchySchema(["A", "B"], [("A", "B"), ("B", "All")])
        # A -> B is forced by (C7) anyway (B is A's only parent), so both
        # copies are individually redundant - but one formulation of the
        # fact must... actually (C7) alone implies it, so both may go.
        ds = DimensionSchema(g, ["A -> B", "A.B"])
        minimized, dropped = minimize(ds)
        assert len(dropped) == 2
        assert minimized.constraints == ()

    def test_minimize_idempotent(self, loc_schema):
        minimized, dropped = minimize(loc_schema)
        assert dropped == []
        again, dropped_again = minimize(minimized)
        assert dropped_again == []


class TestImpliedIntos:
    def test_structural_intos_found(self, loc_schema):
        edges = implied_into_edges(loc_schema)
        # SaleRegion's and Country's only routes up are forced by (C7).
        assert ("SaleRegion", "Country") in edges
        assert ("Country", "All") in edges
        # Province -> SaleRegion likewise (sole parent category).
        assert ("Province", "SaleRegion") in edges

    def test_heterogeneous_edges_not_intos(self, loc_schema):
        edges = implied_into_edges(loc_schema)
        assert ("Store", "SaleRegion") not in edges
        assert ("City", "State") not in edges
        assert ("City", "Country") not in edges

    def test_declared_intos_not_reported(self, loc_schema):
        assert ("Store", "City") not in implied_into_edges(loc_schema)

    def test_unsatisfiable_children_skipped(self, loc_schema):
        hostile = loc_schema.with_constraints(["not Store -> City"])
        edges = implied_into_edges(hostile)
        assert all(child != "Store" for child, _parent in edges)


class TestStrengthen:
    def test_preserves_semantics(self, loc_schema):
        strengthened, added = strengthen_with_intos(loc_schema)
        assert added
        before = {
            f.subhierarchy for f in enumerate_frozen_dimensions(loc_schema, "Store")
        }
        after = {
            f.subhierarchy
            for f in enumerate_frozen_dimensions(strengthened, "Store")
        }
        assert before == after

    def test_speeds_up_the_exhaustive_case(self, loc_schema):
        strengthened, _added = strengthen_with_intos(loc_schema)
        hostile_plain = loc_schema.with_constraints(["not Store.SaleRegion"])
        hostile_strong = strengthened.with_constraints(["not Store.SaleRegion"])
        plain = dimsat(hostile_plain, "Store").stats.expand_calls
        strong = dimsat(hostile_strong, "Store").stats.expand_calls
        assert strong <= plain

    def test_noop_when_everything_declared(self, loc_schema):
        strengthened, _ = strengthen_with_intos(loc_schema)
        again, added = strengthen_with_intos(strengthened)
        assert added == []
        assert again is strengthened


class TestSchemaEquivalence:
    def test_reflexive(self, loc_schema):
        from repro.core.normalize import schemas_equivalent

        assert schemas_equivalent(loc_schema, loc_schema)

    def test_minimize_preserves_equivalence(self, loc_schema):
        from repro.core.normalize import minimize, schemas_equivalent

        doubled = loc_schema.with_constraints(["Store -> City", "Store.City"])
        minimized, _dropped = minimize(doubled)
        assert schemas_equivalent(doubled, minimized)
        assert schemas_equivalent(minimized, loc_schema)

    def test_strengthen_preserves_equivalence(self, loc_schema):
        from repro.core.normalize import (
            schemas_equivalent,
            strengthen_with_intos,
        )

        strengthened, added = strengthen_with_intos(loc_schema)
        assert added
        assert schemas_equivalent(loc_schema, strengthened)

    def test_detects_strict_strengthening(self, loc_schema):
        from repro.core.normalize import schemas_equivalent

        stronger = loc_schema.with_constraints(["Store -> SaleRegion"])
        assert not schemas_equivalent(loc_schema, stronger)

    def test_different_hierarchies_never_equivalent(self, loc_schema):
        from repro.core import DimensionSchema, HierarchySchema
        from repro.core.normalize import schemas_equivalent

        other = DimensionSchema(
            HierarchySchema(["A"], [("A", "All")]), []
        )
        assert not schemas_equivalent(loc_schema, other)
