"""Implication tests (Theorem 2): verdicts, counterexamples, and the
schema audit."""

from __future__ import annotations

import pytest

from repro.constraints import Not, parse, satisfies, satisfies_all
from repro.core import (
    ALL,
    DimensionSchema,
    HierarchySchema,
    equivalent,
    implies,
    is_category_satisfiable,
    is_implied,
    prune_unsatisfiable,
    satisfiability_report,
    unsatisfiable_categories,
)
from repro.errors import ConstraintError


class TestImplication:
    def test_sigma_members_are_implied(self, loc_schema):
        for node in loc_schema.constraints:
            assert is_implied(loc_schema, node), str(node)

    def test_example2_country_through_city(self, loc_schema):
        # Country is reachable only through City in every instance.
        assert is_implied(loc_schema, "Store.Country implies Store.City.Country")

    def test_composed_consequences(self, loc_schema):
        assert is_implied(loc_schema, "Store.Country")
        assert is_implied(loc_schema, "Store.City")
        assert is_implied(loc_schema, "City.Country")

    def test_non_implications(self, loc_schema):
        assert not is_implied(loc_schema, "Store -> SaleRegion")
        assert not is_implied(loc_schema, "Store.Province.Country")
        assert not is_implied(loc_schema, "City -> Province")

    def test_accepts_ast_nodes(self, loc_schema):
        node = parse("Store -> City")
        assert implies(loc_schema, node).implied

    def test_rejects_constraint_over_unknown_category(self, loc_schema):
        with pytest.raises(ConstraintError):
            implies(loc_schema, "Store -> Galaxy")

    def test_rejects_constant_constraint(self, loc_schema):
        with pytest.raises(ConstraintError):
            implies(loc_schema, "true")


class TestCounterexamples:
    def test_counterexample_violates_constraint(self, loc_schema):
        target = parse("Store.Province.Country")
        result = implies(loc_schema, target)
        assert not result.implied
        instance = result.counterexample_instance(loc_schema)
        assert instance is not None
        assert instance.is_valid()
        assert satisfies_all(instance, loc_schema.constraints)
        assert not satisfies(instance, target)

    def test_no_counterexample_when_implied(self, loc_schema):
        result = implies(loc_schema, "Store -> City")
        assert result.implied
        assert result.counterexample is None
        assert result.counterexample_instance(loc_schema) is None

    def test_counterexample_for_example10(self, loc_schema):
        # Country is NOT summarizable from {State, Province}: the witness
        # must be the Washington structure.
        target = parse(
            "Store.Country implies "
            "one(Store.State.Country, Store.Province.Country)"
        )
        result = implies(loc_schema, target)
        assert not result.implied
        assert result.counterexample.name_of("City") == "Washington"


class TestEquivalence:
    def test_constraint_equivalent_to_itself(self, loc_schema):
        assert equivalent(loc_schema, "Store -> City", "Store -> City")

    def test_equivalence_uses_sigma(self, loc_schema):
        # Under locationSch, every store reaches SaleRegion and Country,
        # so the two composed atoms are both always true, hence equivalent.
        assert equivalent(loc_schema, "Store.SaleRegion", "Store.Country")

    def test_non_equivalence(self, loc_schema):
        assert not equivalent(
            loc_schema, "Store -> SaleRegion", "Store -> City"
        )


class TestAudit:
    def test_location_schema_fully_satisfiable(self, loc_schema):
        assert unsatisfiable_categories(loc_schema) == []

    def test_example11_detects_saleregion(self, loc_schema):
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        bad = unsatisfiable_categories(extended)
        assert "SaleRegion" in bad

    def test_unsatisfiability_propagates_to_dependents(self):
        # If B is unsatisfiable and A's only route up needs B, A dies too.
        g = HierarchySchema(["A", "B"], [("A", "B"), ("B", ALL)])
        ds = DimensionSchema(g, ["not B -> All"])
        assert set(unsatisfiable_categories(ds)) == {"A", "B"}

    def test_satisfiability_report_shape(self, loc_schema):
        report = satisfiability_report(loc_schema)
        assert report[ALL] is True
        assert set(report) == set(loc_schema.hierarchy.categories)
        assert all(report.values())

    def test_prune_noop_when_clean(self, loc_schema):
        pruned, dropped = prune_unsatisfiable(loc_schema)
        assert dropped == []
        assert pruned is loc_schema

    def test_prune_drops_category_and_its_constraints(self):
        g = HierarchySchema(
            ["A", "B", "C"],
            [("A", "B"), ("A", "C"), ("B", ALL), ("C", ALL)],
        )
        ds = DimensionSchema(
            g,
            [
                "not B -> All",        # kills B
                "B.All = 'x'",         # rooted at the dead category: dropped
                "A -> C",              # stays
                "A -> B or A -> C",    # mentions B: dropped
            ],
        )
        pruned, dropped = prune_unsatisfiable(ds)
        assert dropped == ["B"]
        assert not pruned.hierarchy.has_category("B")
        assert [str(n) for n in pruned.constraints] == ["A -> C"]
        # A survives: its route through C remains.
        assert is_category_satisfiable(pruned, "A")
