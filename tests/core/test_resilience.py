"""The resilient decision engine: retry, breaker, degradation ladder."""

from __future__ import annotations

import pytest

from repro._types import ALL
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import dimsat
from repro.core.faults import inject_faults
from repro.core.parallel import ParallelDecisionEngine
from repro.core.resilience import (
    AttemptRecord,
    CircuitBreaker,
    DecisionOutcome,
    ResilientDecisionEngine,
    RetryPolicy,
    classify_failure,
)
from repro.errors import BudgetExceeded, DecisionUnavailable, ReproError
from repro.core.budget import DecisionBudget
from repro.generators.location import location_schema

#: Tiny backoff so faulted tests stay fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=0.0, max_delay_ms=0.0)


@pytest.fixture()
def schema():
    return location_schema()


@pytest.fixture()
def engine():
    built = ResilientDecisionEngine(
        retry=FAST_RETRY, max_workers=2, mode="thread", cache=DecisionCache()
    )
    yield built
    built.shutdown()


class TestClassification:
    def test_retryable(self):
        assert classify_failure(OSError("flaky")) == "retryable"
        assert classify_failure(TimeoutError()) == "retryable"

    def test_degradable(self):
        assert classify_failure(BudgetExceeded("over")) == "degradable"

    def test_fatal(self):
        assert classify_failure(ReproError("bad input")) == "fatal"
        assert classify_failure(ValueError()) == "fatal"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError):
            RetryPolicy(base_delay_ms=-1)

    def test_deterministic_backoff(self):
        policy = RetryPolicy(base_delay_ms=2.0, max_delay_ms=10.0, jitter=0.5)
        assert policy.delay_ms(1, token=9) == policy.delay_ms(1, token=9)
        assert 2.0 <= policy.delay_ms(0, token=0) <= 3.0
        assert policy.delay_ms(5, token=0) <= 15.0  # clamped then jittered


class TestCircuitBreaker:
    def test_opens_at_threshold_and_recovers(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_ms=0.0)
        assert breaker.allow("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == "closed"
        breaker.record_failure("fp")
        # cooldown_ms=0: the circuit half-opens immediately, so allow()
        # lets a probe through.
        assert breaker.allow("fp")
        breaker.record_success("fp")
        assert breaker.state("fp") == "closed"

    def test_open_blocks_until_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ms=60_000.0)
        breaker.record_failure("fp")
        assert breaker.state("fp") == "open"
        assert not breaker.allow("fp")
        assert breaker.allow("other")  # per-key isolation

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)


class TestNoFaultEquivalence:
    def test_single_decisions_match_sequential(self, engine, schema):
        categories = sorted(schema.hierarchy.categories - {ALL})
        for category in categories:
            expected = dimsat(schema, category).satisfiable
            assert engine.is_satisfiable(schema, category) == expected
        assert engine.is_summarizable(schema, "SaleRegion", ["Store"]) is True
        assert engine.is_summarizable(schema, "SaleRegion", ["City"]) is False
        assert engine.stats.unknown_verdicts == 0
        assert engine.stats.degraded_sequential == 0

    def test_batch_outcomes_all_parallel_rung(self, engine, schema):
        items = [
            (schema, ("dimsat", "City")),
            (schema, ("summarizable", "SaleRegion", ("Store",))),
            (schema, ("implies", "Store -> City")),
        ]
        outcomes = engine.decide_many_outcomes(items)
        assert [o.status for o in outcomes] == ["ok", "ok", "ok"]
        assert [o.rung for o in outcomes] == ["parallel"] * 3
        assert [o.verdict for o in outcomes] == [True, True, True]
        assert engine.decide_many(items) == [True, True, True]

    def test_decide_single(self, engine, schema):
        outcome = engine.decide(schema, ("dimsat", "City"))
        assert isinstance(outcome, DecisionOutcome)
        assert outcome.ok and outcome.verdict is True
        assert outcome.as_dict()["status"] == "ok"

    def test_malformed_request_still_raises(self, engine, schema):
        with pytest.raises(ReproError):
            engine.decide_many([(schema, ("nonsense", "City"))])


class TestRetries:
    def test_transient_fault_retried_to_success(self, engine, schema):
        # Two guaranteed fires, then quiet: attempt 3 succeeds in-rung.
        with inject_faults("oserror:p=1.0,times=2;seed=5"):
            outcomes = engine.decide_many_outcomes([(schema, ("dimsat", "City"))])
        (outcome,) = outcomes
        assert outcome.ok and outcome.verdict is True
        assert outcome.rung == "parallel"
        assert outcome.attempts == 3
        assert [f.error_type for f in outcome.failures] == ["InjectedFault"] * 2
        assert engine.stats.retries >= 2

    def test_single_decision_retries(self, engine, schema):
        with inject_faults("oserror:p=1.0,times=2;seed=5"):
            assert engine.is_satisfiable(schema, "City") is True


class TestDegradation:
    def test_pool_exhaustion_degrades_inside_parallel_engine(self, schema):
        # The wrapped engine's own sequential fallback absorbs pool
        # exhaustion; the ladder's parallel rung still answers.
        with inject_faults("pool-exhaustion:p=1.0;seed=1"):
            engine = ResilientDecisionEngine(
                retry=FAST_RETRY, max_workers=2, mode="thread",
                cache=DecisionCache(),
            )
            try:
                outcome = engine.decide(schema, ("dimsat", "City"))
                assert outcome.ok and outcome.verdict is True
            finally:
                engine.shutdown()

    def test_persistent_fault_degrades_to_unknown(self, engine, schema):
        with inject_faults("worker-crash:p=1.0;seed=3"):
            outcomes = engine.decide_many_outcomes(
                [(schema, ("dimsat", "City")), (schema, ("dimsat", "State"))]
            )
        for outcome in outcomes:
            assert outcome.unknown
            assert outcome.verdict is None
            assert outcome.rung == "unknown"
            rungs = {f.rung for f in outcome.failures}
            assert rungs == {"parallel", "sequential"}
            assert all(isinstance(f, AttemptRecord) for f in outcome.failures)
        assert engine.stats.unknown_verdicts == 2

    def test_decide_many_raises_decision_unavailable(self, engine, schema):
        with inject_faults("worker-crash:p=1.0;seed=3"):
            with pytest.raises(DecisionUnavailable) as info:
                engine.decide_many([(schema, ("dimsat", "City"))])
        assert info.value.failures  # provenance travels with the error

    def test_single_decision_raises_decision_unavailable(self, engine, schema):
        with inject_faults("worker-crash:p=1.0;seed=3"):
            with pytest.raises(DecisionUnavailable):
                engine.is_summarizable(schema, "SaleRegion", ["Store"])

    def test_budget_exceeded_degrades_not_retries(self, schema):
        # A 0-node budget aborts every rung deterministically; retrying
        # would burn attempts on a certainty, so the ladder degrades
        # straight through to UNKNOWN with BudgetExceeded provenance.
        engine = ResilientDecisionEngine(
            retry=FAST_RETRY, max_workers=2, mode="thread",
            budget=DecisionBudget(max_nodes=0), cache=None,
        )
        try:
            outcome = engine.decide(schema, ("dimsat", "City"))
            assert outcome.unknown
            error_types = {f.error_type for f in outcome.failures}
            assert error_types == {"BudgetExceeded"}
            # one attempt per rung, no retries
            assert outcome.attempts == 2
        finally:
            engine.shutdown()


class TestBreaker:
    def test_breaker_opens_and_skips_parallel_rung(self, schema):
        engine = ResilientDecisionEngine(
            retry=RetryPolicy(max_attempts=1, base_delay_ms=0.0),
            breaker=CircuitBreaker(failure_threshold=2, cooldown_ms=60_000.0),
            max_workers=2,
            mode="thread",
            cache=DecisionCache(),
        )
        try:
            # Crash the worker site only for the first two decisions; the
            # sequential rung passes through the same site, so give it
            # enough quiet fires... easiest: crash everything for 2
            # decisions' worth of attempts (parallel + sequential = 2
            # opportunities per decision at max_attempts=1).
            with inject_faults("worker-crash:p=1.0,times=4;seed=2"):
                for _ in range(2):
                    outcome = engine.decide(schema, ("dimsat", "City"))
                    assert outcome.unknown
            assert engine.breaker.state(schema.fingerprint()) == "open"
            # Faults gone, circuit open: the parallel rung is skipped and
            # the sequential rung answers correctly.
            outcome = engine.decide(schema, ("dimsat", "City"))
            assert outcome.ok and outcome.verdict is True
            assert outcome.rung == "sequential"
            assert outcome.failures[0].error_type == "CircuitOpen"
            assert engine.stats.breaker_open_skips >= 1
        finally:
            engine.shutdown()


class TestCacheCleanliness:
    def test_no_faulted_entry_ever_cached(self, schema):
        cache = DecisionCache()
        engine = ResilientDecisionEngine(
            retry=FAST_RETRY, max_workers=2, mode="thread", cache=cache
        )
        try:
            with inject_faults("worker-crash:p=1.0;seed=3"):
                outcomes = engine.decide_many_outcomes(
                    [(schema, ("dimsat", c)) for c in ("City", "State", "Store")]
                )
            assert all(o.unknown for o in outcomes)
            assert len(cache) == 0  # PR 2 invariant extended: UNKNOWN != verdict
        finally:
            engine.shutdown()

    def test_cache_store_fault_returns_verdict_stores_nothing(self, schema):
        cache = DecisionCache()
        engine = ResilientDecisionEngine(
            retry=FAST_RETRY, max_workers=2, mode="thread", cache=cache
        )
        try:
            with inject_faults("cache-store:p=1.0;seed=1"):
                outcome = engine.decide(schema, ("dimsat", "City"))
            assert outcome.ok and outcome.verdict is True
            assert len(cache) == 0
            assert cache.stats.store_failures >= 1
            # Healthy again: the verdict lands on the next decision.
            assert engine.decide(schema, ("dimsat", "City")).verdict is True
            assert len(cache) > 0
        finally:
            engine.shutdown()


class TestConstruction:
    def test_wraps_prebuilt_engine(self, schema):
        inner = ParallelDecisionEngine(max_workers=1, cache=DecisionCache())
        with ResilientDecisionEngine(inner, retry=FAST_RETRY) as engine:
            assert engine.engine is inner
            assert engine.is_satisfiable(schema, "City") is True

    def test_rejects_engine_plus_kwargs(self):
        inner = ParallelDecisionEngine(max_workers=1)
        with pytest.raises(ReproError):
            ResilientDecisionEngine(inner, max_workers=4)
        inner.shutdown()

    def test_report(self, engine, schema):
        engine.decide(schema, ("dimsat", "City"))
        text = engine.report()
        assert "decisions" in text and "unknown verdicts" in text
