"""Telemetry export tests: the background writer, the renderers, the
pipeline end-to-end, and the operator report."""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.core.decisioncache import DecisionCache
from repro.core.implication import is_implied
from repro.core.telemetry import (
    BackgroundWriter,
    TelemetryPipeline,
    percentile,
    render_chrome_trace,
    render_prometheus,
    render_report,
)
from repro.core.trace import TRACER
from repro.errors import ReproError
from repro.generators.location import location_schema


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 0.5) is None

    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.5) in (50.0, 51.0)

    def test_order_does_not_matter(self):
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0


class TestBackgroundWriter:
    def test_writes_records_as_compact_jsonl(self):
        handle = io.StringIO()
        writer = BackgroundWriter(autostart=False)
        writer.submit(handle, {"b": 2, "a": 1})
        writer.submit(handle, "prerendered")
        writer.start()
        writer.close()
        lines = handle.getvalue().splitlines()
        assert json.loads(lines[0]) == {"b": 2, "a": 1}
        assert lines[1] == "prerendered"
        assert writer.written == 2 and writer.dropped == 0

    def test_defers_as_dict_to_the_drain_thread(self):
        class Lazy:
            rendered = 0

            def as_dict(self):
                Lazy.rendered += 1
                return {"lazy": True}

        handle = io.StringIO()
        writer = BackgroundWriter(autostart=False)
        writer.submit(handle, Lazy())
        assert Lazy.rendered == 0  # the hot path never serialized
        writer.start()
        writer.close()
        assert json.loads(handle.getvalue()) == {"lazy": True}

    def test_full_buffer_drops_and_counts(self):
        handle = io.StringIO()
        writer = BackgroundWriter(maxsize=4, autostart=False)
        for i in range(10):
            writer.submit(handle, {"i": i})
        assert writer.dropped == 6
        writer.start()
        writer.close()
        assert writer.written == 4

    def test_unserializable_record_is_dropped_not_fatal(self):
        handle = io.StringIO()
        writer = BackgroundWriter(autostart=False)
        writer.submit(handle, {"bad": {1, 2}})  # sets are not JSON
        writer.submit(handle, {"good": True})
        writer.start()
        writer.close()
        assert writer.dropped == 1
        assert json.loads(handle.getvalue()) == {"good": True}

    def test_pause_buffers_until_resume(self):
        handle = io.StringIO()
        writer = BackgroundWriter()
        writer.pause()
        writer.submit(handle, {"x": 1})
        time.sleep(0.02)
        assert handle.getvalue() == ""  # nothing drained while paused
        writer.resume()
        writer.flush()
        assert json.loads(handle.getvalue()) == {"x": 1}
        writer.close()

    def test_flush_drains_even_while_paused(self):
        handle = io.StringIO()
        writer = BackgroundWriter()
        writer.pause()
        writer.submit(handle, {"x": 1})
        writer.flush()  # flush overrides the pause
        assert json.loads(handle.getvalue()) == {"x": 1}
        writer.close()

    def test_channel_is_a_bound_enqueue(self):
        handle = io.StringIO()
        writer = BackgroundWriter(maxsize=2, autostart=False)
        submit = writer.channel(handle)
        submit({"a": 1})
        submit({"a": 2})
        submit({"a": 3})  # over the bound
        assert writer.dropped == 1
        writer.start()
        writer.close()
        assert writer.written == 2


class TestAtexitSafetyNet:
    """Records enqueued immediately before interpreter exit must reach
    disk even when nobody calls ``close()`` / ``finalize()`` - the drain
    thread is a daemon, so without the atexit hook they would vanish."""

    def _run(self, code: str, *argv: str):
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONPATH="src")
        return subprocess.run(
            [sys.executable, "-c", code, *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd="/root/repo",
            timeout=60,
        )

    def test_unclosed_writer_flushes_at_exit(self, tmp_path):
        out = tmp_path / "records.jsonl"
        proc = self._run(
            "import sys\n"
            "from repro.core.telemetry import BackgroundWriter\n"
            "handle = open(sys.argv[1], 'w', encoding='utf-8')\n"
            "writer = BackgroundWriter()\n"
            "writer.pause()  # keep everything buffered until exit\n"
            "for i in range(50):\n"
            "    writer.submit(handle, {'i': i})\n"
            "# ... and exit without close(): the atexit hook must drain.\n",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        lines = out.read_text().splitlines()
        assert len(lines) == 50
        assert json.loads(lines[-1]) == {"i": 49}

    def test_unfinalized_pipeline_lands_its_records(self, tmp_path):
        from repro.io.json_io import schema_to_json

        schema_path = tmp_path / "schema.json"
        schema_path.write_text(schema_to_json(location_schema()))
        directory = tmp_path / "telemetry"
        proc = self._run(
            "import sys\n"
            "from repro.core.implication import is_implied\n"
            "from repro.core.telemetry import TelemetryPipeline\n"
            "from repro.io.json_io import schema_from_json\n"
            "schema = schema_from_json(open(sys.argv[2]).read())\n"
            "pipeline = TelemetryPipeline(sys.argv[1]).install()\n"
            "is_implied(schema, 'Store.City.Country')\n"
            "# No finalize(), no close(): exit right on top of the buffer.\n",
            str(directory),
            str(schema_path),
        )
        assert proc.returncode == 0, proc.stderr
        audit = (directory / "audit.jsonl").read_text().splitlines()
        assert any(json.loads(line)["kind"] == "implies" for line in audit)
        spans = (directory / "spans.jsonl").read_text().splitlines()
        assert spans  # the tracer's spans were drained too
        # The atexit path runs the full finalize, manifest included.
        manifest = json.loads((directory / "MANIFEST.json").read_text())
        assert manifest["records_dropped"] == 0

    def test_explicit_finalize_keeps_exit_quiet(self, tmp_path):
        """finalize() then interpreter exit: the hook is unregistered /
        idempotent, so nothing re-renders or raises at shutdown."""
        directory = tmp_path / "telemetry"
        proc = self._run(
            "import sys\n"
            "from repro.core.telemetry import TelemetryPipeline\n"
            "pipeline = TelemetryPipeline(sys.argv[1]).install()\n"
            "manifest = pipeline.finalize()\n"
            "print('finalized', len(manifest['files']))\n",
            str(directory),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr == ""
        assert "finalized" in proc.stdout

    def test_close_is_idempotent_with_the_hook(self):
        writer = BackgroundWriter()
        writer.close()
        writer.close()  # second close (what the hook amounts to): no-op
        assert writer.dropped == 0


class TestRenderPrometheus:
    SNAPSHOT = {
        "counters": {"decision_cache.hits": 7},
        "gauges": {"queue.depth": 2.5},
        "histograms": {
            "dimsat.duration_ms": {
                "count": 10,
                "total": 12.5,
                "p50": 1.0,
                "p95": 2.0,
                "p99": 3.0,
                "reservoir_dropped": 4,
            }
        },
    }

    def test_exposition_format(self):
        text = render_prometheus(self.SNAPSHOT)
        assert "# TYPE repro_decision_cache_hits counter" in text
        assert "repro_decision_cache_hits 7" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2.5" in text
        assert "# TYPE repro_dimsat_duration_ms summary" in text
        assert 'repro_dimsat_duration_ms{quantile="0.99"} 3.0' in text
        assert "repro_dimsat_duration_ms_sum 12.5" in text
        assert "repro_dimsat_duration_ms_count 10" in text
        assert "repro_dimsat_duration_ms_reservoir_dropped 4" in text

    def test_names_are_sanitized(self):
        text = render_prometheus({"counters": {"1weird-name!": 1}})
        assert "repro__1weird_name_ 1" in text

    def test_none_quantiles_are_omitted(self):
        text = render_prometheus(
            {"histograms": {"empty": {"count": 0, "total": 0.0, "p50": None}}}
        )
        assert "quantile" not in text
        assert "repro_empty_count 0" in text


class TestRenderChromeTrace:
    def test_spans_become_complete_events(self):
        document = render_chrome_trace(
            [
                {
                    "span_id": 2,
                    "parent_id": 1,
                    "tid": 7,
                    "name": "dimsat.check",
                    "start_ms": 1.5,
                    "duration_ms": 0.25,
                    "error": None,
                    "attrs": {"category": "Store"},
                }
            ],
            pid=42,
        )
        (event,) = document["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 1500.0 and event["dur"] == 250.0
        assert event["pid"] == 42 and event["tid"] == 7
        assert event["cat"] == "dimsat"
        assert event["args"]["category"] == "Store"
        assert event["args"]["parent_id"] == 1

    def test_events_become_instants_sorted_by_time(self):
        document = render_chrome_trace(
            [
                {
                    "span_id": 1,
                    "parent_id": None,
                    "tid": 0,
                    "name": "b",
                    "start_ms": 2.0,
                    "duration_ms": 1.0,
                    "error": None,
                    "attrs": {},
                }
            ],
            [{"name": "a.hit", "time_ms": 1.0, "span_id": 1, "attrs": {}}],
        )
        phases = [e["ph"] for e in document["traceEvents"]]
        assert phases == ["i", "X"]  # the earlier instant sorts first


@pytest.fixture()
def telemetry_run(tmp_path):
    """One real decision workload exported through a pipeline; yields
    the directory and the finalize manifest."""
    schema = location_schema()
    directory = tmp_path / "telemetry"
    pipeline = TelemetryPipeline(str(directory))
    pipeline.install()
    try:
        cache = DecisionCache()
        for _ in range(2):  # second pass hits the cache
            is_implied(schema, "Store -> City", cache=cache)
            is_implied(schema, "City -> Province", cache=cache)
    finally:
        manifest = pipeline.finalize()
        TRACER.clear()
    return directory, manifest


class TestTelemetryPipeline:
    def test_writes_every_artifact(self, telemetry_run):
        directory, manifest = telemetry_run
        for name in (
            "spans.jsonl",
            "events.jsonl",
            "audit.jsonl",
            "schemas.jsonl",
            "metrics.json",
            "metrics.prom",
            "trace.json",
            "MANIFEST.json",
        ):
            assert (directory / name).exists(), name
        assert manifest["records_written"] > 0
        assert manifest["records_dropped"] == 0
        assert set(manifest["files"]) == set(manifest["files"])

    def test_audit_records_carry_hit_flags(self, telemetry_run):
        directory, _ = telemetry_run
        records = [
            json.loads(line)
            for line in (directory / "audit.jsonl").read_text().splitlines()
        ]
        assert len(records) == 4
        assert [r["cache_hit"] for r in records] == [False, False, True, True]
        assert {r["kind"] for r in records} == {"implies"}
        fingerprint = location_schema().fingerprint()
        assert {r["fingerprint"] for r in records} == {fingerprint}

    def test_schema_sidecar_written_once_per_fingerprint(self, telemetry_run):
        directory, _ = telemetry_run
        sidecar = [
            json.loads(line)
            for line in (directory / "schemas.jsonl").read_text().splitlines()
        ]
        assert len(sidecar) == 1
        assert sidecar[0]["fingerprint"] == location_schema().fingerprint()

    def test_spans_are_json_documents(self, telemetry_run):
        directory, _ = telemetry_run
        spans = [
            json.loads(line)
            for line in (directory / "spans.jsonl").read_text().splitlines()
        ]
        assert spans and {"implication.decide"} <= {s["name"] for s in spans}

    def test_chrome_trace_is_loadable(self, telemetry_run):
        directory, _ = telemetry_run
        document = json.loads((directory / "trace.json").read_text())
        assert document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"

    def test_detaches_on_finalize(self, telemetry_run):
        from repro.core.auditlog import AUDIT

        assert TRACER.sink is None
        assert AUDIT.enabled is False and AUDIT.sink is None

    def test_finalize_is_idempotent(self, tmp_path):
        pipeline = TelemetryPipeline(str(tmp_path / "t"))
        first = pipeline.finalize()
        second = pipeline.finalize()
        assert first["directory"] == second["directory"]


class TestRenderReport:
    def test_report_sections(self, telemetry_run):
        directory, _ = telemetry_run
        text = render_report(str(directory))
        assert "decisions (audit log):" in text
        assert "implies" in text
        assert "top spans (by total time):" in text
        assert "caches (process-wide metrics):" in text

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(ReproError):
            render_report(str(tmp_path / "nope"))

    def test_empty_directory_renders_placeholders(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        text = render_report(str(directory))
        assert "(no audit records)" in text
