"""The decision server under concurrency: many clients over one shared
engine, byte-identical to the sequential kernel; edits rekey warm state
mid-traffic without a stale verdict; BUSY is backpressure, never a wrong
answer; warm state survives a stop/start cycle through the cache dir.
"""

from __future__ import annotations

import socket
import threading
import time
from contextlib import contextmanager

import pytest

from repro.core.decisioncache import DecisionCache
from repro.core.implication import is_implied
from repro.core.parallel import ParallelDecisionEngine
from repro.core.resilience import ResilientDecisionEngine
from repro.core.server import ALL_OPS, DECISION_OPS, DecisionServer
from repro.core.client import DecisionClient, ServerClosed
from repro.core.summarizability import is_summarizable_in_schema
from repro.core.wire import encode_frame
from repro.generators.location import location_schema
from repro.io.json_io import schema_to_json


def _engine(max_workers: int = 2) -> ResilientDecisionEngine:
    """A resilient engine over a private cache (no global-state bleed)."""
    return ResilientDecisionEngine(
        ParallelDecisionEngine(max_workers=max_workers, cache=DecisionCache())
    )


@contextmanager
def running_server(**kwargs):
    kwargs.setdefault("engine", _engine())
    server = DecisionServer(**kwargs)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.started.wait(10), "server did not start"
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(10)
        assert not thread.is_alive(), "server thread did not stop"
        server.engine.shutdown()


def _client(server: DecisionServer, **kwargs) -> DecisionClient:
    return DecisionClient(server.host, server.port, timeout=30.0, **kwargs)


@pytest.fixture()
def loc_schema():
    return location_schema()


# A mixed decision workload over the location schema.  Truth values are
# never hardcoded here - every test compares against the sequential
# kernel run with cache=None.
IMPLIES_WORKLOAD = [
    "Store.City",
    "City.State.Country",
    "Store.SaleRegion",
    "City.Country",
    "State.Country",
]
SUMMARIZABLE_WORKLOAD = [
    ("Country", ["City"]),
    ("Country", ["City", "SaleRegion"]),
    ("Country", ["State", "Province"]),
    ("State", ["City"]),
]


class TestWireOpsEndToEnd:
    def test_load_schema_and_every_decision_op(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                assert fp == loc_schema.fingerprint()

                for constraint in IMPLIES_WORKLOAD:
                    response = client.implies(fp, constraint)
                    assert response["status"] == "ok"
                    assert response["verdict"] == is_implied(
                        loc_schema, constraint, cache=None
                    )

                for target, sources in SUMMARIZABLE_WORKLOAD:
                    response = client.summarizable(fp, target, sources)
                    assert response["status"] == "ok"
                    assert response["verdict"] == is_summarizable_in_schema(
                        loc_schema, target, sources, cache=None
                    )

                response = client.decide(fp, ("dimsat", "Store"))
                assert response["status"] == "ok"
                assert response["verdict"] is True
                assert response["rung"] == "parallel"

    def test_navigate_plans(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                assert client.navigate(fp, "City", ["City"])["plan"] == (
                    "materialized"
                )
                rewritten = client.navigate(
                    fp, "Country", ["City", "SaleRegion"]
                )
                assert rewritten["plan"] == "rewritten"
                for source in rewritten["sources"]:
                    assert loc_schema.hierarchy.reaches(source, "Country")
                assert is_summarizable_in_schema(
                    loc_schema, "Country", rewritten["sources"], cache=None
                )
                # Nothing materialized reaches the target: full base scan.
                assert client.navigate(fp, "Country", [])["plan"] == "base-scan"

    def test_unknown_fingerprint_is_typed_error(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                response = client.implies("0" * 64, "Store.City")
                assert response["status"] == "error"
                assert "load-schema" in response["error"]

    def test_unknown_op_is_typed_error(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                response = client.call("frobnicate")
                assert response["status"] == "error"
                for op in ALL_OPS:
                    assert op in response["error"]

    def test_request_id_is_echoed(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                response = client.call(
                    "implies", fingerprint=fp, constraint="Store.City", id=42
                )
                assert response["id"] == 42

    def test_malformed_frame_poisons_only_its_connection(self, loc_schema):
        with running_server() as server:
            raw = socket.create_connection(
                (server.host, server.port), timeout=10
            )
            try:
                raw.sendall(b"\x00\x00\x00\x05nope!")
                # The server answers once (best effort) then hangs up.
                raw.settimeout(10)
                assert raw.recv(4096)
                assert raw.recv(4096) == b""
            finally:
                raw.close()
            # A fresh connection is unharmed.
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                assert client.implies(fp, "Store.City")["status"] == "ok"

    def test_stats_op_reports_the_surface(self, loc_schema):
        with running_server() as server:
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                client.implies(fp, "Store.City")
                stats = client.stats()
                assert stats["status"] == "ok"
                assert stats["requests"] >= 2
                assert stats["served"]["implies"] == 1
                assert stats["schemas"] == 1
                assert stats["connections_open"] >= 1
                assert stats["cache"]["entries"] >= 1
                assert stats["resilience"]["decisions"] >= 1


class TestConcurrentClients:
    def test_concurrent_verdicts_byte_identical_to_sequential(
        self, loc_schema
    ):
        """N simultaneous clients must serve byte-for-byte the frames a
        fresh single-threaded server produces for the same requests."""

        def workload(client, fp):
            frames = []
            for constraint in IMPLIES_WORKLOAD:
                response = client.implies(fp, constraint)
                # The witness is a search-order artifact (parallel and
                # sequential refutation legitimately find different
                # frozen dimensions); the byte-identity contract is the
                # verdict and every other field.
                response.pop("counterexample", None)
                frames.append(encode_frame(response))
            for target, sources in SUMMARIZABLE_WORKLOAD:
                response = client.summarizable(fp, target, sources)
                frames.append(encode_frame(response))
            return frames

        # Reference: a fresh server, one client, strictly sequential.
        with running_server(engine=_engine(max_workers=1)) as server:
            with _client(server) as client:
                reference = workload(client, client.load_schema(loc_schema))

        # Contender: 8 clients hammering one shared warm engine.
        with running_server() as server:
            results = [None] * 8
            errors = []

            def run(slot):
                try:
                    with _client(server) as client:
                        fp = client.load_schema(loc_schema)
                        results[slot] = workload(client, fp)
                except Exception as error:  # pragma: no cover - diagnostics
                    errors.append(error)

            threads = [
                threading.Thread(target=run, args=(slot,))
                for slot in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert not errors
            for frames in results:
                assert frames == reference

    def test_shared_cache_serves_warm_hits_across_clients(self, loc_schema):
        with running_server() as server:
            with _client(server) as warmer:
                fp = warmer.load_schema(loc_schema)
                warmer.implies(fp, "Store.City")
            cache = server.cache
            hits_before = cache.stats.hits
            with _client(server) as reader:
                assert reader.implies(fp, "Store.City")["status"] == "ok"
            assert cache.stats.hits > hits_before

    def test_busy_is_never_a_wrong_verdict(self, loc_schema):
        """Saturate a max_inflight=1 server: some calls get BUSY, and
        every non-busy response still matches the sequential kernel."""
        engine = _engine(max_workers=1)
        real_implies = engine.implies

        def slow_implies(schema, constraint):
            time.sleep(0.05)
            return real_implies(schema, constraint)

        engine.implies = slow_implies  # type: ignore[method-assign]
        with running_server(engine=engine, max_inflight=1) as server:
            with _client(server) as setup:
                fp = setup.load_schema(loc_schema)
            responses = []
            lock = threading.Lock()

            def hammer():
                # busy_retries=0: record raw BUSY responses instead of
                # retrying them away.
                with _client(server, busy_retries=0) as client:
                    for constraint in IMPLIES_WORKLOAD:
                        response = client.call(
                            "implies", fingerprint=fp, constraint=constraint
                        )
                        with lock:
                            responses.append((constraint, response))

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)

            busy = [r for _, r in responses if r["status"] == "busy"]
            served = [
                (c, r) for c, r in responses if r["status"] == "ok"
            ]
            assert busy, "saturation never triggered the BUSY gate"
            assert served, "every request was refused"
            for response in busy:
                # A BUSY carries backpressure data and no verdict.
                assert "verdict" not in response
                assert response["max_inflight"] == 1
            for constraint, response in served:
                assert response["verdict"] == is_implied(
                    loc_schema, constraint, cache=None
                )
            assert server.stats.busy_responses == len(busy)

    def test_mid_traffic_edit_rekeys_without_stale_verdict(self):
        """Readers hammer ``implies`` while an edit lands; afterwards the
        new fingerprint answers with the edited schema's truth, the old
        fingerprint still answers with the original truth, and a verdict
        whose dependency cone is disjoint from the delta survives the
        rekey as a warm hit."""
        from repro.core.hierarchy import HierarchySchema
        from repro.core.schema import DimensionSchema

        # Base -> {A, C} -> T -> All: the edit adds "Base -> A" (delta
        # cone on the Base/A branch); the warmed "C -> T" verdict lives
        # in the disjoint {C, T, All} cone, so it must be rekeyed.
        schema = DimensionSchema(
            HierarchySchema(
                ["Base", "A", "C", "T"],
                [
                    ("Base", "A"),
                    ("Base", "C"),
                    ("A", "T"),
                    ("C", "T"),
                    ("T", "All"),
                ],
            ),
            ["C -> T"],
        )
        flipping = "Base -> A"  # False originally...
        untouched = "C -> T"
        assert not is_implied(schema, flipping, cache=None)

        with running_server() as server:
            with _client(server) as editor:
                fp = editor.load_schema(schema)
                editor.implies(fp, flipping)
                editor.implies(fp, untouched)

                stop = threading.Event()
                observed = []
                errors = []

                def reader():
                    try:
                        with _client(server) as client:
                            while not stop.is_set():
                                response = client.implies(fp, flipping)
                                observed.append(response["verdict"])
                    except Exception as error:  # pragma: no cover
                        errors.append(error)

                threads = [
                    threading.Thread(target=reader) for _ in range(4)
                ]
                for thread in threads:
                    thread.start()
                time.sleep(0.05)
                edited = editor.edit(
                    fp, "add-constraint", constraint=flipping
                )
                assert edited["status"] == "ok"
                new_fp = edited["fingerprint"]
                assert new_fp != fp
                time.sleep(0.05)
                stop.set()
                for thread in threads:
                    thread.join(30)
                assert not errors

                # ...True under the edited schema; the readers queried
                # the OLD fingerprint throughout, so every observation
                # must be the old schema's verdict - an edit never makes
                # a registered fingerprint lie.
                assert observed and all(v is False for v in observed)
                assert editor.implies(new_fp, flipping)["verdict"] is True
                assert editor.implies(fp, flipping)["verdict"] is False

                # The delta-scoped rekey carried the untouched verdict
                # to the new fingerprint: warm hit, no recompute.
                cache = server.cache
                misses_before = cache.stats.misses
                response = editor.implies(new_fp, untouched)
                assert response["verdict"] is True
                assert cache.stats.misses == misses_before


class TestLifecycleAndPersistence:
    def test_ephemeral_port_is_assigned(self):
        with running_server(port=0) as server:
            assert server.port and server.port > 0

    def test_shutdown_op_acks_then_stops(self, loc_schema):
        server = DecisionServer(engine=_engine())
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.started.wait(10)
        with _client(server) as client:
            ack = client.shutdown()
            assert ack["status"] == "ok" and ack["stopping"] is True
        thread.join(10)
        assert not thread.is_alive()
        server.engine.shutdown()
        with pytest.raises((ServerClosed, OSError)):
            DecisionClient(server.host, server.port, timeout=2).stats()

    def test_warm_state_survives_a_restart(self, loc_schema, tmp_path):
        cache_dir = str(tmp_path / "cache")
        with running_server(cache_dir=cache_dir) as server:
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                for constraint in IMPLIES_WORKLOAD:
                    client.implies(fp, constraint)
        # running_server's exit path is the graceful stop: cache saved.

        with running_server(cache_dir=cache_dir) as server:
            cache = server.cache
            assert len(cache) >= len(IMPLIES_WORKLOAD)
            with _client(server) as client:
                fp = client.load_schema(loc_schema)
                misses_before = cache.stats.misses
                for constraint in IMPLIES_WORKLOAD:
                    response = client.implies(fp, constraint)
                    assert response["verdict"] == is_implied(
                        loc_schema, constraint, cache=None
                    )
                assert cache.stats.misses == misses_before

    def test_request_shutdown_from_another_thread_persists(
        self, loc_schema, tmp_path
    ):
        """The signal path: request_shutdown called off-loop (exactly
        what the SIGINT handler does) still lands the cache on disk."""
        cache_dir = str(tmp_path / "cache")
        server = DecisionServer(engine=_engine(), cache_dir=cache_dir)
        thread = threading.Thread(target=server.run, daemon=True)
        thread.start()
        assert server.started.wait(10)
        with _client(server) as client:
            fp = client.load_schema(loc_schema)
            client.implies(fp, "Store.City")
        server.request_shutdown()
        thread.join(10)
        assert not thread.is_alive()
        server.engine.shutdown()
        assert (tmp_path / "cache" / "decisions.cache").exists()

    def test_decision_ops_are_the_gated_subset(self):
        assert set(DECISION_OPS) < set(ALL_OPS)
        for op in ("load-schema", "edit", "stats", "shutdown"):
            assert op not in DECISION_OPS
