"""The fault-injection harness: spec grammar, determinism, the gate."""

from __future__ import annotations

import pytest

from repro.core.faults import (
    FAULTS,
    CacheStoreFault,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    PoolExhaustedFault,
    _draw,
    inject_faults,
    parse_fault_spec,
)


class TestSpecParsing:
    def test_single_clause(self):
        injector = parse_fault_spec("worker-crash")
        assert [r.kind for r in injector.rules] == ["worker-crash"]
        assert injector.rules[0].probability == 1.0
        assert injector.seed == 0

    def test_full_grammar(self):
        injector = parse_fault_spec(
            "worker-crash:p=0.3,after=10,times=5;"
            "slow-worker:delay_ms=2.5;cache-store:p=0.5;seed=42"
        )
        assert injector.seed == 42
        by_kind = {r.kind: r for r in injector.rules}
        assert by_kind["worker-crash"].probability == 0.3
        assert by_kind["worker-crash"].after == 10
        assert by_kind["worker-crash"].max_fires == 5
        assert by_kind["slow-worker"].delay_ms == 2.5
        assert by_kind["cache-store"].probability == 0.5

    def test_seed_as_clause_field(self):
        assert parse_fault_spec("oserror:p=1.0,seed=9").seed == 9

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            ";;",
            "meteor-strike",
            "worker-crash:p=2.0",
            "worker-crash:p=x",
            "worker-crash:bogus=1",
            "worker-crash:p",
            "worker-crash;worker-crash",
            "seed=nope;worker-crash",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(spec)

    def test_rule_validation(self):
        with pytest.raises(FaultSpecError):
            FaultRule("worker-crash", probability=-0.1)
        with pytest.raises(FaultSpecError):
            FaultRule("worker-crash", after=-1)
        with pytest.raises(FaultSpecError):
            FaultRule("nope")


class TestDeterminism:
    def test_draw_is_pure(self):
        assert _draw(7, "worker-crash", 3) == _draw(7, "worker-crash", 3)
        assert 0.0 <= _draw(7, "worker-crash", 3) < 1.0

    def test_same_seed_same_schedule(self):
        def schedule(seed):
            injector = parse_fault_spec(f"oserror:p=0.4;seed={seed}")
            fired = []
            for index in range(50):
                try:
                    injector.worker()
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert schedule(11) == schedule(11)
        assert schedule(11) != schedule(12)  # astronomically unlikely to tie
        assert any(schedule(11))
        assert not all(schedule(11))

    def test_after_and_times(self):
        injector = parse_fault_spec("worker-crash:p=1.0,after=3,times=2")
        outcomes = []
        for _ in range(10):
            try:
                injector.worker()
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("boom")
        assert outcomes == ["ok"] * 3 + ["boom"] * 2 + ["ok"] * 5
        assert injector.fired() == {"worker-crash": 2}
        assert injector.opportunities() == {"worker-crash": 10}


class TestSites:
    def test_cache_store_fault_type(self):
        injector = parse_fault_spec("cache-store:p=1.0")
        with pytest.raises(CacheStoreFault):
            injector.cache_store()
        injector.worker()  # worker site unaffected

    def test_pool_exhaustion_fault_type(self):
        injector = parse_fault_spec("pool-exhaustion:p=1.0")
        with pytest.raises(PoolExhaustedFault):
            injector.pool_create()
        assert issubclass(PoolExhaustedFault, OSError)

    def test_slow_worker_sleeps_not_raises(self):
        injector = parse_fault_spec("slow-worker:p=1.0,delay_ms=1")
        injector.worker()  # must not raise
        assert injector.fired() == {"slow-worker": 1}


class TestGate:
    def test_gate_inactive_by_default(self):
        assert FAULTS.injector is None
        assert not FAULTS.active
        FAULTS.worker()
        FAULTS.cache_store()
        FAULTS.pool_create()  # all no-ops

    def test_context_manager_arms_and_restores(self):
        assert FAULTS.injector is None
        with inject_faults("worker-crash:p=1.0") as injector:
            assert FAULTS.injector is injector
            with pytest.raises(InjectedFault):
                FAULTS.worker()
        assert FAULTS.injector is None

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with inject_faults("worker-crash:p=1.0"):
                raise RuntimeError("boom")
        assert FAULTS.injector is None

    def test_regions_nest(self):
        outer = parse_fault_spec("cache-store:p=1.0")
        inner = parse_fault_spec("worker-crash:p=1.0")
        with inject_faults(outer):
            with inject_faults(inner):
                assert FAULTS.injector is inner
            assert FAULTS.injector is outer
        assert FAULTS.injector is None

    def test_accepts_prebuilt_injector(self):
        injector = FaultInjector([FaultRule("oserror", probability=0.0)], seed=3)
        with inject_faults(injector) as armed:
            assert armed is injector
            FAULTS.worker()  # p=0: never fires
        assert injector.opportunities() == {"oserror": 1}
        assert injector.fired() == {"oserror": 0}
