"""Schema profiling tests."""

from __future__ import annotations

import pytest

from repro.core.profile import (
    profile_report,
    reasoning_profile,
    schema_profile,
)


class TestSchemaProfile:
    def test_location_metrics(self, loc_schema):
        profile = schema_profile(loc_schema)
        assert profile.categories == 6
        assert profile.edges == 10
        assert profile.bottom_categories == ("Store",)
        # City->Country, State->Country, Store->SaleRegion
        assert profile.shortcuts == 3
        assert not profile.cyclic
        assert "City" in profile.heterogeneous_categories
        assert profile.constraints == 7
        assert profile.max_constants == 3
        assert profile.numeric_categories == ()
        assert 0.0 < profile.into_coverage < 1.0

    def test_atom_census(self, loc_schema):
        profile = schema_profile(loc_schema)
        assert profile.atom_counts["path"] >= 3
        assert profile.atom_counts["equality"] >= 6
        assert profile.atom_counts["rolls-up"] >= 1

    def test_numeric_categories_reported(self):
        from repro.core import DimensionSchema, HierarchySchema

        g = HierarchySchema(["A", "B"], [("A", "B"), ("B", "All")])
        ds = DimensionSchema(g, ["A.B < 10 implies A -> B"])
        profile = schema_profile(ds)
        assert profile.numeric_categories == ("B",)
        assert profile.atom_counts["comparison"] == 1

    def test_render_mentions_every_axis(self, loc_schema):
        text = schema_profile(loc_schema).render()
        for needle in ("categories (N)", "max constants (N_K)",
                       "into coverage", "heterogeneous"):
            assert needle in text


class TestReasoningProfile:
    def test_effort_below_raw_spaces(self, loc_schema):
        profile = reasoning_profile(loc_schema, "Store")
        assert profile.satisfiable
        assert profile.expand_calls < profile.raw_edge_subsets
        assert profile.raw_edge_subsets == 2 ** 10
        assert profile.raw_assignment_space > 0

    def test_unsatisfiable_reported(self, loc_schema):
        hostile = loc_schema.with_constraints(["not Store -> City"])
        profile = reasoning_profile(hostile, "Store")
        assert not profile.satisfiable
        assert "UNSATISFIABLE" in profile.render()

    def test_report_covers_bottoms(self, loc_schema):
        text = profile_report(loc_schema)
        assert "Store: satisfiable" in text
