"""The persistent decision-cache store: round trips, atomicity,
corruption detection, version skew, and replay verification."""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.core import (
    CacheStoreError,
    DecisionCache,
    is_category_satisfiable,
    is_implied,
    is_summarizable_in_schema,
    load_cache,
    save_cache,
)
from repro.core.cachestore import FORMAT_VERSION, cache_file_path
from repro.core.faults import CacheStoreFault, inject_faults


@pytest.fixture()
def warm_cache(loc_schema) -> DecisionCache:
    cache = DecisionCache()
    is_implied(loc_schema, "Store.City.Country", cache=cache)
    is_category_satisfiable(loc_schema, "SaleRegion", cache=cache)
    is_summarizable_in_schema(loc_schema, "Country", ("City",), cache=cache)
    return cache


class TestRoundTrip:
    def test_save_load_serves_hits(self, warm_cache, loc_schema, tmp_path):
        report = save_cache(warm_cache, str(tmp_path))
        assert report.entries == len(warm_cache)
        assert report.schemas == 1
        assert os.path.exists(report.path)

        fresh = DecisionCache()
        load_report = load_cache(fresh, str(tmp_path))
        assert load_report.found and load_report.clean
        assert load_report.loaded == len(warm_cache)
        assert load_report.replayed == load_report.loaded
        assert len(fresh) == len(warm_cache)
        assert is_implied(loc_schema, "Store.City.Country", cache=fresh)
        assert fresh.stats.hits == 1 and fresh.stats.misses == 0

    def test_loaded_entries_keep_their_provenance(
        self, warm_cache, loc_schema, tmp_path
    ):
        save_cache(warm_cache, str(tmp_path))
        fresh = DecisionCache()
        load_cache(fresh, str(tmp_path))
        key = (loc_schema.fingerprint(), "dimsat", "SaleRegion", ())
        provenance = fresh.provenance_of(key)
        assert provenance is not None
        assert provenance == warm_cache.provenance_of(key)
        # ... so a loaded cache still rekeys across edits.
        edited = loc_schema.with_constraints(
            ["Store -> City implies Store -> City"]
        )
        moved, _dropped = fresh.rekey(loc_schema, edited)
        assert moved >= 1

    def test_missing_file_is_a_cold_start(self, tmp_path):
        report = load_cache(DecisionCache(), str(tmp_path))
        assert not report.found
        assert report.loaded == 0

    def test_skip_replay_still_checksums(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        fresh = DecisionCache()
        report = load_cache(fresh, str(tmp_path), verify_replay=False)
        assert report.loaded == len(warm_cache)
        assert report.replayed == 0


class TestIntegrity:
    def test_truncated_payload_is_rejected(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        path = cache_file_path(str(tmp_path))
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[:-7])
        with pytest.raises(CacheStoreError, match="checksum"):
            load_cache(DecisionCache(), str(tmp_path))

    def test_flipped_payload_byte_is_rejected(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        path = cache_file_path(str(tmp_path))
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CacheStoreError, match="checksum"):
            load_cache(DecisionCache(), str(tmp_path))

    def test_garbage_header_is_rejected(self, tmp_path):
        path = cache_file_path(str(tmp_path))
        open(path, "wb").write(b"\x00\x01 not a cache\n")
        with pytest.raises(CacheStoreError):
            load_cache(DecisionCache(), str(tmp_path))

    def test_version_skew_is_rejected(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        path = cache_file_path(str(tmp_path))
        with open(path, "rb") as handle:
            header = json.loads(handle.readline())
            payload = handle.read()
        header["version"] = FORMAT_VERSION + 1
        with open(path, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode() + b"\n")
            handle.write(payload)
        with pytest.raises(CacheStoreError, match="version"):
            load_cache(DecisionCache(), str(tmp_path))

    def test_injected_store_fault_leaves_previous_file(
        self, warm_cache, tmp_path
    ):
        save_cache(warm_cache, str(tmp_path))
        before = open(cache_file_path(str(tmp_path)), "rb").read()
        with inject_faults("cache-store:p=1.0"):
            with pytest.raises(CacheStoreFault):
                save_cache(warm_cache, str(tmp_path))
        assert open(cache_file_path(str(tmp_path)), "rb").read() == before
        assert not os.path.exists(cache_file_path(str(tmp_path)) + ".tmp")


class TestMergeOnSave:
    """Two processes sharing one ``--cache-dir`` (the server plus a
    sidecar CLI) must not last-writer-win away each other's verdicts."""

    def _other_cache(self, loc_schema) -> DecisionCache:
        """Warm verdicts disjoint from the ``warm_cache`` fixture."""
        cache = DecisionCache()
        is_implied(loc_schema, "City.State.Country", cache=cache)
        is_category_satisfiable(loc_schema, "Province", cache=cache)
        return cache

    def test_disjoint_writers_union_on_disk(
        self, warm_cache, loc_schema, tmp_path
    ):
        first = save_cache(warm_cache, str(tmp_path))
        assert first.merged_entries == 0
        other = self._other_cache(loc_schema)
        second = save_cache(other, str(tmp_path))
        assert second.merged_entries == len(warm_cache)
        assert second.entries == len(warm_cache) + len(other)

        union = DecisionCache()
        report = load_cache(union, str(tmp_path))
        assert report.clean
        assert report.loaded == len(warm_cache) + len(other)
        # Both writers' verdicts now serve as hits.
        is_implied(loc_schema, "Store.City.Country", cache=union)
        is_implied(loc_schema, "City.State.Country", cache=union)
        assert union.stats.hits == 2 and union.stats.misses == 0

    def test_shadowed_keys_are_not_double_counted(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        report = save_cache(warm_cache, str(tmp_path))
        # Every disk key is shadowed by the identical in-memory verdict.
        assert report.merged_entries == 0
        assert report.entries == len(warm_cache)

    def test_merged_entries_keep_provenance(
        self, warm_cache, loc_schema, tmp_path
    ):
        save_cache(warm_cache, str(tmp_path))
        save_cache(self._other_cache(loc_schema), str(tmp_path))
        union = DecisionCache()
        load_cache(union, str(tmp_path))
        key = (loc_schema.fingerprint(), "dimsat", "SaleRegion", ())
        assert union.provenance_of(key) == warm_cache.provenance_of(key)

    def test_merge_false_overwrites(self, warm_cache, loc_schema, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        other = self._other_cache(loc_schema)
        report = save_cache(other, str(tmp_path), merge=False)
        assert report.merged_entries == 0
        fresh = DecisionCache()
        assert load_cache(fresh, str(tmp_path)).loaded == len(other)

    def test_corrupt_previous_file_is_replaced(self, warm_cache, tmp_path):
        path = cache_file_path(str(tmp_path))
        open(path, "wb").write(b"\x00\x01 not a cache\n")
        report = save_cache(warm_cache, str(tmp_path))
        assert report.merged_entries == 0
        fresh = DecisionCache()
        load_report = load_cache(fresh, str(tmp_path))
        assert load_report.clean and load_report.loaded == len(warm_cache)

    def test_concurrent_writers_lose_nothing(
        self, warm_cache, loc_schema, tmp_path
    ):
        """Hammer one directory from two threads; the advisory lock
        serializes the read-merge-write cycles, so the final file holds
        both writers' entries regardless of interleaving."""
        import threading

        other = self._other_cache(loc_schema)
        barrier = threading.Barrier(2)
        errors = []

        def writer(cache):
            try:
                barrier.wait(timeout=5.0)
                for _ in range(5):
                    save_cache(cache, str(tmp_path))
            except Exception as error:  # pragma: no cover - diagnostics
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(cache,))
            for cache in (warm_cache, other)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        union = DecisionCache()
        report = load_cache(union, str(tmp_path))
        assert report.clean
        assert report.loaded == len(warm_cache) + len(other)


class TestReplayVerification:
    def test_divergent_entry_is_dropped_and_reported(
        self, warm_cache, loc_schema, tmp_path
    ):
        """Flip one stored verdict (with a valid checksum) - the replay
        pass must catch and drop it, keeping the honest entries."""
        save_cache(warm_cache, str(tmp_path))
        path = cache_file_path(str(tmp_path))
        with open(path, "rb") as handle:
            handle.readline()
            data = pickle.loads(handle.read())
        key = (loc_schema.fingerprint(), "dimsat", "SaleRegion", ())
        honest = data["entries"][key]
        data["entries"][key] = type(honest)(
            satisfiable=not honest.satisfiable,
            witness=honest.witness,
            stats=honest.stats,
            trace=honest.trace,
        )
        payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        import hashlib

        header = {
            "magic": "repro-decision-cache",
            "version": FORMAT_VERSION,
            "entries": len(data["entries"]),
            "schemas": len(data["schemas"]),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        with open(path, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode() + b"\n")
            handle.write(payload)

        fresh = DecisionCache()
        report = load_cache(fresh, str(tmp_path))
        assert report.dropped_divergent == 1
        assert not report.clean
        assert report.loaded == len(warm_cache) - 1
        assert fresh.peek(key) is None  # the lie never entered the cache

    def test_tampered_schema_sidecar_is_rejected(self, warm_cache, tmp_path):
        save_cache(warm_cache, str(tmp_path))
        path = cache_file_path(str(tmp_path))
        with open(path, "rb") as handle:
            handle.readline()
            data = pickle.loads(handle.read())
        fingerprint = next(iter(data["schemas"]))
        text = data["schemas"][fingerprint]
        data["schemas"][fingerprint] = text.replace(
            '"Store"', '"Depot"'
        )
        payload = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        import hashlib

        header = {
            "magic": "repro-decision-cache",
            "version": FORMAT_VERSION,
            "entries": len(data["entries"]),
            "schemas": len(data["schemas"]),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        with open(path, "wb") as handle:
            handle.write(json.dumps(header, sort_keys=True).encode() + b"\n")
            handle.write(payload)
        with pytest.raises(CacheStoreError):
            load_cache(DecisionCache(), str(tmp_path))
