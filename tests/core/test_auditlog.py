"""Audit-log tests: recording through the instrumented decision sites,
the schema sidecar, and replay verification."""

from __future__ import annotations

import json

import pytest

from repro.core.auditlog import (
    AUDIT,
    AuditLog,
    load_audit_records,
    load_schema_sidecar,
    verify_audit_log,
)
from repro.core.decisioncache import DecisionCache
from repro.core.implication import is_implied
from repro.core.summarizability import is_summarizable_in_schema
from repro.errors import ReproError
from repro.generators.location import location_schema
from repro.io.json_io import schema_to_json


class CollectingSink:
    """An in-memory AuditSink."""

    def __init__(self):
        self.records = []
        self.schemas = []

    def export_audit(self, record):
        self.records.append(record)

    def export_schema(self, fingerprint, schema_json):
        self.schemas.append((fingerprint, schema_json))


@pytest.fixture()
def audit_sink():
    """The process-wide log attached to a collecting sink, detached after."""
    sink = CollectingSink()
    AUDIT.attach(sink)
    try:
        yield sink
    finally:
        AUDIT.detach()


class TestRecording:
    def test_disabled_by_default(self):
        log = AuditLog()
        assert log.enabled is False and log.sink is None

    def test_cache_decisions_record_hit_flags(self, audit_sink):
        schema = location_schema()
        cache = DecisionCache()
        assert is_implied(schema, "Store -> City", cache=cache)
        assert is_implied(schema, "Store -> City", cache=cache)
        first, second = audit_sink.records
        assert first["cache_hit"] is False and second["cache_hit"] is True
        assert first["kind"] == second["kind"] == "implies"
        assert first["verdict"] is True and second["verdict"] is True
        assert first["status"] == "ok"
        assert first["fingerprint"] == schema.fingerprint()
        assert first["duration_ms"] >= 0.0
        # The hit re-serves the same canonical request.
        assert first["request"] == second["request"]

    def test_summarizability_decisions_are_recorded(self, audit_sink):
        schema = location_schema()
        cache = DecisionCache()
        is_summarizable_in_schema(schema, "Country", ("City",), cache=cache)
        # The decision (and any sub-decisions it memoized) all landed.
        kinds = {record["kind"] for record in audit_sink.records}
        assert "summarizable" in kinds

    def test_schema_sidecar_once_per_fingerprint(self, audit_sink):
        schema = location_schema()
        cache = DecisionCache()
        is_implied(schema, "Store -> City", cache=cache)
        is_implied(schema, "City -> Province", cache=cache)
        assert len(audit_sink.schemas) == 1
        fingerprint, schema_json = audit_sink.schemas[0]
        assert fingerprint == schema.fingerprint()
        # The sidecar JSON really is the replayable schema.
        assert json.loads(schema_json)

    def test_record_unknown_persists_the_attempt_ladder(self, audit_sink):
        schema = location_schema()
        AUDIT.record_unknown(
            schema,
            ("implies", "Store -> City"),
            attempts=3,
            failures=[
                {"rung": "parallel", "error": "WorkerCrash"},
                {"rung": "sequential", "error": "WorkerCrash"},
            ],
            duration_ms=1.25,
        )
        (record,) = audit_sink.records
        assert record["status"] == "unknown"
        assert record["verdict"] is None
        assert record["attempts"] == 3
        assert [f["rung"] for f in record["failures"]] == [
            "parallel",
            "sequential",
        ]

    def test_detached_log_records_nothing(self):
        schema = location_schema()
        cache = DecisionCache()
        assert AUDIT.enabled is False
        is_implied(schema, "Store -> City", cache=cache)
        # Nothing to assert on a sink - there is none; the call not
        # raising is the contract (one attribute check, no work).


def _write_log(tmp_path, records, schema=None):
    """An audit.jsonl + schemas.jsonl pair a verify run can replay."""
    schema = schema or location_schema()
    directory = tmp_path / "log"
    directory.mkdir(exist_ok=True)
    (directory / "audit.jsonl").write_text(
        "".join(json.dumps(r) + "\n" for r in records)
    )
    (directory / "schemas.jsonl").write_text(
        json.dumps(
            {
                "fingerprint": schema.fingerprint(),
                "schema_json": schema_to_json(schema),
            }
        )
        + "\n"
    )
    return directory


def _record(schema, seq=1, verdict=True, **overrides):
    base = {
        "seq": seq,
        "ts": 0.0,
        "kind": "implies",
        "fingerprint": schema.fingerprint(),
        "request": ["implies", "Store -> City"],
        "options": [],
        "verdict": verdict,
        "status": "ok",
        "duration_ms": 0.1,
        "cache_hit": False,
    }
    base.update(overrides)
    return base


class TestVerify:
    def test_clean_log_replays_with_zero_divergences(self, tmp_path):
        schema = location_schema()
        directory = _write_log(
            tmp_path,
            [_record(schema, seq=1), _record(schema, seq=2, cache_hit=True)],
        )
        report = verify_audit_log(str(directory))
        assert report.ok
        assert report.records == 2 and report.verified == 2
        assert report.schemas == 1
        assert report.divergences == []

    def test_accepts_the_audit_file_itself(self, tmp_path):
        schema = location_schema()
        directory = _write_log(tmp_path, [_record(schema)])
        report = verify_audit_log(str(directory / "audit.jsonl"))
        assert report.ok and report.verified == 1

    def test_tampered_verdict_is_a_divergence(self, tmp_path):
        schema = location_schema()
        directory = _write_log(tmp_path, [_record(schema, verdict=False)])
        report = verify_audit_log(str(directory))
        assert not report.ok
        (divergence,) = report.divergences
        assert divergence.recorded is False and divergence.replayed is True
        assert "DIVERGED" in report.render()

    def test_unknown_and_options_records_are_skipped(self, tmp_path):
        schema = location_schema()
        directory = _write_log(
            tmp_path,
            [
                _record(schema, seq=1, status="unknown", verdict=None),
                _record(schema, seq=2, options=["exhaustive"]),
                _record(schema, seq=3),
            ],
        )
        report = verify_audit_log(str(directory))
        assert report.ok
        assert report.skipped_unknown == 1
        assert report.skipped_options == 1
        assert report.verified == 1

    def test_missing_schema_fails_verification(self, tmp_path):
        schema = location_schema()
        directory = _write_log(
            tmp_path, [_record(schema, fingerprint="deadbeef" * 8)]
        )
        report = verify_audit_log(str(directory))
        assert not report.ok
        assert report.missing_schemas == 1

    def test_every_decision_kind_replays(self, tmp_path):
        schema = location_schema()
        directory = _write_log(
            tmp_path,
            [
                _record(schema, seq=1),
                _record(
                    schema,
                    seq=2,
                    kind="dimsat",
                    request=["dimsat", "Store"],
                ),
                _record(
                    schema,
                    seq=3,
                    kind="summarizable",
                    request=["summarizable", "Country", ["City"]],
                ),
            ],
        )
        report = verify_audit_log(str(directory))
        assert report.ok and report.verified == 3

    def test_corrupt_record_is_an_error(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ReproError, match="corrupt audit record"):
            load_audit_records(str(path))

    def test_sidecar_fingerprint_mismatch_is_an_error(self, tmp_path):
        schema = location_schema()
        path = tmp_path / "schemas.jsonl"
        path.write_text(
            json.dumps(
                {
                    "fingerprint": "deadbeef" * 8,
                    "schema_json": schema_to_json(schema),
                }
            )
            + "\n"
        )
        with pytest.raises(ReproError, match="fingerprint"):
            load_schema_sidecar(str(path))

    def test_replay_does_not_feed_the_active_log(self, tmp_path, audit_sink):
        """Verification re-decides on the kernel; with telemetry live
        those decisions must not append to the log being verified."""
        schema = location_schema()
        directory = _write_log(tmp_path, [_record(schema)])
        before = len(audit_sink.records)
        report = verify_audit_log(str(directory))
        assert report.ok
        assert len(audit_sink.records) == before
        assert AUDIT.enabled is True  # restored afterwards
