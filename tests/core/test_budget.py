"""Budget exhaustion and cancellation semantics.

The contract under test: a blown budget raises the typed
:class:`~repro.errors.BudgetExceeded` - it never produces a wrong verdict
- and an aborted decision leaves every cache verdict-clean, so re-asking
without (or with a larger) budget returns the correct answer.
"""

from __future__ import annotations

import pytest

from repro.core.budget import DecisionBudget, DecisionCancelled
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import DimsatOptions, SearchBudgetExceeded, dimsat
from repro.core.implication import implies, is_category_satisfiable, is_implied
from repro.core.parallel import ParallelDecisionEngine
from repro.core.summarizability import is_summarizable_in_schema
from repro.errors import BudgetExceeded, ReproError, SchemaError
from repro.generators.location import location_schema


@pytest.fixture()
def schema():
    return location_schema()


class TestDecisionBudget:
    def test_zero_node_budget_raises_on_first_charge(self):
        budget = DecisionBudget(max_nodes=0)
        with pytest.raises(BudgetExceeded):
            budget.charge()

    def test_node_ceiling_counts_across_charges(self):
        budget = DecisionBudget(max_nodes=3)
        budget.charge()
        budget.charge(2)
        with pytest.raises(BudgetExceeded):
            budget.charge()
        assert budget.nodes_charged == 4

    def test_expired_deadline_raises(self):
        budget = DecisionBudget(time_ms=0.0)
        with pytest.raises(BudgetExceeded):
            budget.charge()

    def test_unbounded_budget_never_raises(self):
        budget = DecisionBudget()
        for _ in range(1000):
            budget.charge()
        assert budget.nodes_charged == 1000

    def test_cancel_wins_over_exhaustion(self):
        budget = DecisionBudget(max_nodes=0)
        budget.cancel()
        assert budget.cancelled
        with pytest.raises(DecisionCancelled):
            budget.charge()

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            DecisionBudget(max_nodes=-1)
        with pytest.raises(ValueError):
            DecisionBudget(time_ms=-1.0)

    def test_fresh_copies_ceilings_not_state(self):
        budget = DecisionBudget(max_nodes=5, time_ms=60_000.0)
        budget.charge(5)
        budget.cancel()
        copy = budget.fresh()
        assert copy.max_nodes == 5 and copy.time_ms == 60_000.0
        assert copy.nodes_charged == 0 and not copy.cancelled
        copy.charge(5)

    def test_spec_round_trip(self):
        budget = DecisionBudget(max_nodes=7, time_ms=123.0)
        rebuilt = DecisionBudget.from_spec(budget.spec())
        assert rebuilt.max_nodes == 7 and rebuilt.time_ms == 123.0
        assert DecisionBudget.from_spec(None) is None


class TestKernelBudgets:
    """Budgets threaded through the sequential decision procedures."""

    def test_dimsat_zero_budget_raises_never_wrong(self, schema):
        with pytest.raises(BudgetExceeded):
            dimsat(schema, "Store", budget=DecisionBudget(max_nodes=0))

    def test_implication_zero_budget_raises(self, schema):
        with pytest.raises(BudgetExceeded):
            implies(
                schema,
                "Store.City.Country",
                cache=None,
                budget=DecisionBudget(max_nodes=0),
            )

    def test_summarizability_zero_budget_raises(self, schema):
        with pytest.raises(BudgetExceeded):
            is_summarizable_in_schema(
                schema,
                "Country",
                ["City"],
                cache=None,
                budget=DecisionBudget(max_nodes=0),
            )

    def test_budget_exceeded_is_typed_and_catchable(self, schema):
        try:
            dimsat(schema, "Store", budget=DecisionBudget(max_nodes=0))
        except BudgetExceeded as error:
            assert isinstance(error, ReproError)
        else:  # pragma: no cover
            pytest.fail("expected BudgetExceeded")

    def test_generous_budget_changes_nothing(self, schema):
        generous = DecisionBudget(max_nodes=1_000_000, time_ms=60_000.0)
        assert dimsat(schema, "Store", budget=generous).satisfiable
        assert is_implied(schema, "Store.City.Country", cache=None, budget=generous.fresh())
        assert is_summarizable_in_schema(
            schema, "Country", ["City"], cache=None, budget=generous.fresh()
        )

    def test_max_expansions_is_budget_exceeded(self, schema):
        """The legacy options-level ceiling raises the same typed error."""
        with pytest.raises(BudgetExceeded):
            dimsat(schema, "Store", DimsatOptions(max_expansions=0))
        assert issubclass(SearchBudgetExceeded, BudgetExceeded)
        assert issubclass(SearchBudgetExceeded, SchemaError)


class TestCachesStayVerdictClean:
    """An aborted decision must not leave a wrong (or any) cache entry."""

    def test_aborted_dimsat_not_cached(self, schema):
        cache = DecisionCache()
        with pytest.raises(BudgetExceeded):
            cache.dimsat(schema, "Store", budget=DecisionBudget(max_nodes=0))
        assert len(cache) == 0
        # Re-query without a budget: correct verdict, computed fresh.
        assert cache.dimsat(schema, "Store").satisfiable
        assert cache.stats.misses == 2  # the abort counted as a miss too
        assert cache.stats.hits == 0

    def test_aborted_implication_then_correct_verdict(self, schema):
        cache = DecisionCache()
        with pytest.raises(BudgetExceeded):
            cache.is_implied(
                schema, "Store.City.Country", budget=DecisionBudget(max_nodes=0)
            )
        assert cache.is_implied(schema, "Store.City.Country") is True

    def test_aborted_summarizability_then_correct_verdict(self, schema):
        cache = DecisionCache()
        with pytest.raises(BudgetExceeded):
            cache.is_summarizable(
                schema, "Country", ["City"], budget=DecisionBudget(max_nodes=0)
            )
        assert cache.is_summarizable(schema, "Country", ["City"]) is True
        assert cache.is_summarizable(schema, "Country", ["State", "Province"]) is False

    def test_engine_abort_leaves_cache_clean(self, schema):
        """A budget abort inside the parallel fan-out (with cancelled
        branches in flight) must leave the shared cache verdict-clean."""
        cache = DecisionCache()
        with ParallelDecisionEngine(
            max_workers=4, budget=DecisionBudget(max_nodes=0), cache=cache
        ) as engine:
            with pytest.raises(BudgetExceeded):
                engine.is_satisfiable(schema, "Store")
            with pytest.raises(BudgetExceeded):
                engine.is_summarizable(schema, "Country", ["City"])
        assert len(cache) == 0
        with ParallelDecisionEngine(max_workers=4, cache=cache) as engine:
            assert engine.is_satisfiable(schema, "Store") is True
            assert engine.is_summarizable(schema, "Country", ["City"]) is True

    def test_engine_batch_budget_abort_propagates(self, schema):
        cache = DecisionCache()
        with ParallelDecisionEngine(
            max_workers=2, budget=DecisionBudget(max_nodes=0), cache=cache
        ) as engine:
            with pytest.raises(BudgetExceeded):
                engine.decide_many(
                    [(schema, ("dimsat", "Store")), (schema, ("dimsat", "City"))]
                )
        assert len(cache) == 0
