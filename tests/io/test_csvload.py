"""CSV loader tests: dimension files, fact files, and error reporting."""

from __future__ import annotations

import pytest

from repro.errors import OlapError, SchemaError
from repro.io import facts_from_csv, facts_to_csv, instance_from_csv

DIMENSION_CSV = """member,category,parent,parent_category,name
s1,Store,Toronto,City,
s2,Store,Toronto,City,
Toronto,City,Ontario,Province,
Ontario,Province,SR-North,SaleRegion,
SR-North,SaleRegion,Canada,Country,
Canada,Country,,,
"""


class TestDimensionCsv:
    def test_loads_valid_instance(self, loc_hierarchy):
        instance = instance_from_csv(loc_hierarchy, DIMENSION_CSV)
        assert instance.is_valid()
        assert instance.ancestor_in("s1", "Country") == "Canada"

    def test_names_column(self, loc_hierarchy):
        text = DIMENSION_CSV.replace(
            "Toronto,City,Ontario,Province,",
            "Toronto,City,Ontario,Province,The Six",
        )
        instance = instance_from_csv(loc_hierarchy, text)
        assert instance.name("Toronto") == "The Six"

    def test_missing_columns_rejected(self, loc_hierarchy):
        with pytest.raises(SchemaError):
            instance_from_csv(loc_hierarchy, "member,parent\ns1,Toronto\n")

    def test_empty_member_rejected(self, loc_hierarchy):
        with pytest.raises(SchemaError, match="line 2"):
            instance_from_csv(
                loc_hierarchy, "member,category,parent,parent_category,name\n,Store,,,\n"
            )

    def test_category_redeclaration_rejected(self, loc_hierarchy):
        text = (
            "member,category,parent,parent_category,name\n"
            "x,Store,,,\n"
            "x,City,,,\n"
        )
        with pytest.raises(SchemaError, match="redeclared"):
            instance_from_csv(loc_hierarchy, text)

    def test_parent_without_category_rejected(self, loc_hierarchy):
        text = (
            "member,category,parent,parent_category,name\n"
            "s1,Store,Toronto,,\n"
        )
        with pytest.raises(SchemaError):
            instance_from_csv(loc_hierarchy, text)

    def test_parent_category_without_parent_rejected(self, loc_hierarchy):
        """Regression: ``s1,Store,,City,`` used to load silently, dropping
        the City declaration the author plainly intended.  Now it raises
        with the offending line number and member."""
        text = (
            "member,category,parent,parent_category,name\n"
            "Toronto,City,,,\n"
            "s1,Store,,City,\n"
        )
        with pytest.raises(SchemaError, match=r"line 3.*'s1'.*'City'"):
            instance_from_csv(loc_hierarchy, text)

    def test_parentless_row_still_loads(self, loc_hierarchy):
        """Both columns empty stays the legitimate parentless-member form."""
        text = (
            "member,category,parent,parent_category,name\n"
            "Canada,Country,,,\n"
        )
        instance = instance_from_csv(loc_hierarchy, text)
        assert "Canada" in instance


FACT_CSV = """member,sales,profit
s1,10.5,2.0
s2,3.25,0.5
"""


class TestFactCsv:
    def test_loads_facts(self, loc_instance):
        facts = facts_from_csv(loc_instance, FACT_CSV)
        assert len(facts) == 2
        assert facts.measures == frozenset({"sales", "profit"})
        assert facts.values("sales") == [10.5, 3.25]

    def test_round_trip(self, loc_instance):
        facts = facts_from_csv(loc_instance, FACT_CSV)
        again = facts_from_csv(loc_instance, facts_to_csv(facts))
        assert again.values("sales") == facts.values("sales")
        assert again.values("profit") == facts.values("profit")

    def test_member_column_required(self, loc_instance):
        with pytest.raises(OlapError):
            facts_from_csv(loc_instance, "sales\n1.0\n")

    def test_measure_column_required(self, loc_instance):
        with pytest.raises(OlapError):
            facts_from_csv(loc_instance, "member\ns1\n")

    def test_bad_number_reports_line(self, loc_instance):
        with pytest.raises(OlapError, match="line 3"):
            facts_from_csv(loc_instance, "member,sales\ns1,1.0\ns2,abc\n")

    def test_unknown_member_rejected(self, loc_instance):
        with pytest.raises(OlapError):
            facts_from_csv(loc_instance, "member,sales\nghost,1.0\n")
