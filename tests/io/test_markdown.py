"""Markdown report tests."""

from __future__ import annotations

from repro.io.markdown import schema_report


class TestSchemaReport:
    def test_sections_present(self, loc_schema):
        text = schema_report(loc_schema)
        for heading in (
            "# Dimension schema report",
            "## Hierarchy",
            "## Constraints",
            "## Profile",
            "## Frozen dimensions (root: Store)",
            "## Safe aggregation",
        ):
            assert heading in text

    def test_constraints_glossed(self, loc_schema):
        text = schema_report(loc_schema)
        assert "`Store -> City`" in text
        assert "every Store has a parent in City" in text

    def test_frozen_inventory_lists_four(self, loc_schema):
        text = schema_report(loc_schema)
        assert "Country=Canada" in text
        assert "City=Washington" in text

    def test_matrix_verdicts(self, loc_schema):
        text = schema_report(loc_schema, matrix_targets=["Country"])
        lines = text.splitlines()
        start = lines.index("## Safe aggregation (single-source summarizability)")
        row = next(
            l for l in lines[start:] if l.startswith("| Country |")
        )
        # Order: City, Country, Province, SaleRegion, State, Store.
        cells = [c.strip() for c in row.strip("|").split("|")][1:]
        assert cells == ["yes", "·", "**NO**", "yes", "**NO**", "yes"]

    def test_unsatisfiable_root_reported(self, loc_schema):
        hostile = loc_schema.with_constraints(["not Store -> City"])
        text = schema_report(hostile, root="Store")
        assert "unsatisfiable" in text

    def test_bare_hierarchy_report(self, loc_hierarchy):
        from repro.core import DimensionSchema

        text = schema_report(DimensionSchema(loc_hierarchy, []))
        assert "*(none - the hierarchy schema alone)*" in text
