"""DOT exporter tests: structure of the emitted graphs."""

from __future__ import annotations

from repro.core import dimsat, enumerate_frozen_dimensions
from repro.io import (
    frozen_set_to_dot,
    frozen_to_dot,
    hierarchy_to_dot,
    instance_to_dot,
)


class TestHierarchyDot:
    def test_contains_all_edges(self, loc_hierarchy):
        text = hierarchy_to_dot(loc_hierarchy)
        assert text.startswith("digraph hierarchy {")
        assert '"Store" -> "City";' in text
        assert '"Country" -> "All";' in text
        assert text.rstrip().endswith("}")

    def test_all_rendered_as_ellipse(self, loc_hierarchy):
        text = hierarchy_to_dot(loc_hierarchy)
        assert '"All" [shape=ellipse];' in text


class TestInstanceDot:
    def test_clusters_per_category(self, loc_instance):
        text = instance_to_dot(loc_instance)
        assert "subgraph cluster_" in text
        assert 'label="Country";' in text
        assert '"s1" -> "Toronto";' in text

    def test_quotes_escaped(self, chain_hierarchy):
        from repro.core import DimensionInstance

        d = DimensionInstance(
            chain_hierarchy,
            {'d"1': "Day", "m": "Month", "y": "Year"},
            [('d"1', "m"), ("m", "y")],
        )
        text = instance_to_dot(d)
        assert '\\"' in text


class TestFrozenDot:
    def test_pinned_names_annotated(self, loc_schema):
        frozen = dimsat(loc_schema, "Store").witness
        text = frozen_to_dot(frozen)
        assert "digraph frozen {" in text
        assert "= " in text  # at least Country carries a pinned name

    def test_figure4_rendering(self, loc_schema):
        frozen = enumerate_frozen_dimensions(loc_schema, "Store")
        text = frozen_set_to_dot(frozen)
        assert text.count("subgraph cluster_") == 4
        assert 'label="f1";' in text
        assert "Washington" in text
