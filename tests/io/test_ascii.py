"""ASCII tree rendering tests."""

from __future__ import annotations

from repro.core import ALL, HierarchySchema
from repro.io import hierarchy_tree, instance_tree


class TestHierarchyTree:
    def test_root_is_all(self, loc_hierarchy):
        text = hierarchy_tree(loc_hierarchy)
        assert text.splitlines()[0] == "All"

    def test_every_category_appears(self, loc_hierarchy):
        text = hierarchy_tree(loc_hierarchy)
        for category in loc_hierarchy.categories:
            assert category in text

    def test_cyclic_schema_renders_finitely(self):
        g = HierarchySchema(
            ["A", "B"],
            [("A", "B"), ("B", "A"), ("A", ALL), ("B", ALL)],
        )
        text = hierarchy_tree(g)
        assert "*" in text  # the cycle marker
        assert len(text.splitlines()) < 20


class TestInstanceTree:
    def test_every_member_appears(self, loc_instance):
        text = instance_tree(loc_instance)
        for member in loc_instance.all_members():
            assert str(member) in text

    def test_names_annotated(self, chain_hierarchy):
        from repro.core import DimensionInstance

        d = DimensionInstance(
            chain_hierarchy,
            {"d1": "Day", "m": "Month", "y": "Year"},
            [("d1", "m"), ("m", "y")],
            names={"m": "January"},
        )
        text = instance_tree(d)
        assert "m (name=January) [Month]" in text

    def test_elision_of_wide_categories(self, loc_instance):
        text = instance_tree(loc_instance, max_members_per_category=1)
        assert "more" in text
