"""JSON serialization round-trip tests."""

from __future__ import annotations

import json

import pytest

from repro.errors import SchemaError
from repro.io import (
    hierarchy_from_dict,
    hierarchy_to_dict,
    instance_from_json,
    instance_to_json,
    schema_from_json,
    schema_to_json,
)


class TestHierarchy:
    def test_round_trip(self, loc_hierarchy):
        data = hierarchy_to_dict(loc_hierarchy)
        assert hierarchy_from_dict(data) == loc_hierarchy

    def test_dict_is_json_ready(self, loc_hierarchy):
        text = json.dumps(hierarchy_to_dict(loc_hierarchy))
        assert "Store" in text

    def test_malformed_document(self):
        with pytest.raises(SchemaError):
            hierarchy_from_dict({"categories": ["A"]})


class TestSchema:
    def test_round_trip_preserves_constraints(self, loc_schema):
        text = schema_to_json(loc_schema)
        rebuilt = schema_from_json(text)
        assert rebuilt.hierarchy == loc_schema.hierarchy
        assert rebuilt.constraints == loc_schema.constraints

    def test_round_trip_preserves_semantics(self, loc_schema):
        from repro.core import enumerate_frozen_dimensions

        rebuilt = schema_from_json(schema_to_json(loc_schema))
        original = {
            f.subhierarchy for f in enumerate_frozen_dimensions(loc_schema, "Store")
        }
        again = {
            f.subhierarchy for f in enumerate_frozen_dimensions(rebuilt, "Store")
        }
        assert original == again

    def test_constraints_optional(self, loc_hierarchy):
        from repro.io import schema_from_dict

        rebuilt = schema_from_dict(hierarchy_to_dict(loc_hierarchy))
        assert rebuilt.constraints == ()


class TestInstance:
    def test_round_trip(self, loc_instance):
        text = instance_to_json(loc_instance)
        rebuilt = instance_from_json(text)
        assert rebuilt.is_valid()
        assert len(rebuilt) == len(loc_instance)
        assert rebuilt.members("Country") == loc_instance.members("Country")
        assert set(rebuilt.member_edges()) == set(loc_instance.member_edges())

    def test_names_preserved(self, loc_instance):
        rebuilt = instance_from_json(instance_to_json(loc_instance))
        assert rebuilt.name("Washington") == "Washington"

    def test_non_identity_names_preserved(self, chain_hierarchy):
        from repro.core import DimensionInstance

        d = DimensionInstance(
            chain_hierarchy,
            {"d1": "Day", "m": "Month", "y": "Year"},
            [("d1", "m"), ("m", "y")],
            names={"m": "January"},
        )
        rebuilt = instance_from_json(instance_to_json(d))
        assert rebuilt.name("m") == "January"

    def test_malformed_document(self):
        from repro.io import instance_from_dict

        with pytest.raises(SchemaError):
            instance_from_dict({"members": {}})


class TestExtendedConstraints:
    def test_comparison_constraints_round_trip(self):
        from repro.core import DimensionSchema, HierarchySchema
        from repro.io import schema_from_json, schema_to_json

        g = HierarchySchema(
            ["SKU", "Band"], [("SKU", "Band"), ("Band", "All")]
        )
        ds = DimensionSchema(
            g,
            [
                "SKU < 100 implies SKU -> Band",
                "SKU.Band >= 9.5 or SKU.Band != 0",
            ],
        )
        rebuilt = schema_from_json(schema_to_json(ds))
        assert rebuilt.constraints == ds.constraints
        assert rebuilt.thresholds("SKU") == ds.thresholds("SKU")

    def test_exactly_one_round_trip(self, loc_hierarchy):
        from repro.core import DimensionSchema
        from repro.io import schema_from_json, schema_to_json

        ds = DimensionSchema(
            loc_hierarchy,
            ["one(Store -> City, Store -> SaleRegion)"],
        )
        rebuilt = schema_from_json(schema_to_json(ds))
        assert rebuilt.constraints == ds.constraints
