"""Brute-force oracle tests: agreement with DIMSAT on the paper example
and on small synthetic schemas."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BruteForceStats,
    brute_force_frozen_dimensions,
    brute_force_implies,
    brute_force_satisfiable,
    candidate_subhierarchies,
)
from repro.core import ALL, dimsat, enumerate_frozen_dimensions, is_implied
from repro.errors import SchemaError
from repro.generators.location import paper_frozen_structures
from repro.generators.random_schema import RandomSchemaConfig, random_schema


class TestCandidates:
    def test_candidates_are_valid_structures(self, loc_schema):
        for sub in candidate_subhierarchies(loc_schema, "Store"):
            sub.validate(loc_schema.hierarchy)
            assert sub.is_acyclic()
            assert not sub.shortcut_edges()

    def test_candidates_include_paper_structures(self, loc_schema):
        found = set(candidate_subhierarchies(loc_schema, "Store"))
        for sub in paper_frozen_structures().values():
            assert sub in found


class TestSatisfiability:
    def test_location_store(self, loc_schema):
        assert brute_force_satisfiable(loc_schema, "Store")

    def test_example11(self, loc_schema):
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        assert not brute_force_satisfiable(extended, "SaleRegion")

    def test_all_always_satisfiable(self, loc_schema):
        assert brute_force_satisfiable(loc_schema, ALL)

    def test_unknown_category(self, loc_schema):
        with pytest.raises(SchemaError):
            brute_force_satisfiable(loc_schema, "Galaxy")

    def test_stats_counters(self, loc_schema):
        stats = BruteForceStats()
        brute_force_satisfiable(loc_schema, "Store", stats)
        assert stats.valid_subhierarchies > 0
        assert stats.candidates_tested > 0


class TestAgreementWithDimsat:
    def test_frozen_dimension_sets_agree_on_location(self, loc_schema):
        brute = {
            f.subhierarchy
            for f in brute_force_frozen_dimensions(loc_schema, "Store")
        }
        fast = {
            f.subhierarchy for f in enumerate_frozen_dimensions(loc_schema, "Store")
        }
        assert brute == fast

    @pytest.mark.parametrize("seed", range(6))
    def test_satisfiability_agrees_on_random_schemas(self, seed):
        config = RandomSchemaConfig(
            n_categories=5, n_layers=3, seed=seed, into_fraction=0.5
        )
        schema = random_schema(config)
        for category in sorted(schema.hierarchy.categories):
            brute = brute_force_satisfiable(schema, category)
            fast = dimsat(schema, category).satisfiable
            assert brute == fast, (seed, category)

    def test_implication_agrees(self, loc_schema):
        queries = [
            "Store -> City",
            "Store -> SaleRegion",
            "Store.Country implies Store.City.Country",
            "Store.Province.Country",
        ]
        for query in queries:
            assert brute_force_implies(loc_schema, query) == is_implied(
                loc_schema, query
            ), query
