"""Null-padding homogenization tests (the Pedersen-Jensen baseline)."""

from __future__ import annotations

import pytest

from repro.baselines import homogenize, is_null_member, padding_report
from repro.core import ALL, DimensionInstance, HierarchySchema
from repro.core.rollup import reached_categories
from repro.errors import SchemaError
from repro.olap import SUM, FactTable, cube_view, recombine, views_equal


def ancestor_signature(instance, member):
    return frozenset(
        instance.category_of(a) for a in instance.ancestors_of(member)
    )


class TestHomogenize:
    def test_result_is_valid(self, loc_instance):
        assert homogenize(loc_instance).is_valid()

    def test_result_is_homogeneous(self, loc_instance):
        padded = homogenize(loc_instance)
        for category in padded.hierarchy.categories:
            signatures = {
                ancestor_signature(padded, m) for m in padded.members(category)
            }
            assert len(signatures) <= 1, category

    def test_real_members_keep_their_rollups(self, loc_instance):
        padded = homogenize(loc_instance)
        for member in loc_instance.all_members():
            for category in reached_categories(loc_instance, member):
                original = loc_instance.ancestor_in(member, category)
                assert padded.ancestor_in(member, category) == original

    def test_homogeneous_input_is_untouched(self, chain_instance):
        padded = homogenize(chain_instance)
        assert len(padded) == len(chain_instance)
        assert not any(is_null_member(m) for m in padded.all_members())

    def test_washington_gets_null_chain(self, loc_instance):
        padded = homogenize(loc_instance)
        assert padded.ancestor_in("Washington", "State") is not None
        state = padded.ancestor_in("Washington", "State")
        assert is_null_member(state)

    def test_cyclic_hierarchy_rejected(self):
        g = HierarchySchema(
            ["A", "B"],
            [("A", "B"), ("B", "A"), ("A", ALL), ("B", ALL)],
        )
        d = DimensionInstance(g, {"a": "A"}, [("a", "all")])
        with pytest.raises(SchemaError):
            homogenize(d)

    def test_disagreeing_descendants_rejected(self):
        # City c1 sits in a sale region, so every city must be padded into
        # SaleRegion - but c2's stores roll into *different* sale regions,
        # so no single (null) region works without splitting c2.
        g = HierarchySchema(
            ["Store", "City", "SaleRegion"],
            [
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "SaleRegion"),
                ("City", ALL),
                ("SaleRegion", ALL),
            ],
        )
        d = DimensionInstance(
            g,
            {
                "s0": "Store",
                "s1": "Store",
                "s2": "Store",
                "c1": "City",
                "c2": "City",
                "r1": "SaleRegion",
                "r2": "SaleRegion",
            },
            [
                ("s0", "c1"),
                ("c1", "r1"),
                ("s1", "c2"),
                ("s2", "c2"),
                ("s1", "r1"),
                ("s2", "r2"),
            ],
        )
        with pytest.raises(SchemaError):
            homogenize(d)


class TestPaddingRestoresSummarizability:
    def test_state_province_view_becomes_safe(self, loc_instance):
        """The whole point of padding: after it, Country can be derived
        from {State, Province} - the nulls carry Washington's sales."""
        padded = homogenize(loc_instance)
        rows = [(m, {"sales": 1.0}) for m in sorted(loc_instance.base_members())]
        facts = FactTable(padded, rows)
        direct = cube_view(facts, "Country", SUM, "sales")
        state = cube_view(facts, "State", SUM, "sales")
        derived = recombine(padded, "Country", [state], SUM)
        # After padding every store reaches a (possibly null) state.
        assert views_equal(direct, derived)


class TestReport:
    def test_report_counts(self, loc_instance):
        report = padding_report(loc_instance)
        assert report.padded_members > report.original_members
        assert report.null_members > 0
        assert 0 < report.null_fraction < 1
        assert report.member_blowup > 1.0

    def test_report_on_homogeneous_instance(self, chain_instance):
        report = padding_report(chain_instance)
        assert report.null_members == 0
        assert report.member_blowup == 1.0
