"""Null-padding homogenization tests (the Pedersen-Jensen baseline)."""

from __future__ import annotations

import pytest

from repro.baselines import homogenize, is_null_member, padding_report
from repro.baselines.homogenize import PaddingReport
from repro.core import ALL, DimensionInstance, HierarchySchema
from repro.core.rollup import reached_categories
from repro.errors import SchemaError
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.workloads import instance_from_frozen
from repro.olap import SUM, FactTable, cube_view, recombine, views_equal


def ancestor_signature(instance, member):
    return frozenset(
        instance.category_of(a) for a in instance.ancestors_of(member)
    )


class TestHomogenize:
    def test_result_is_valid(self, loc_instance):
        assert homogenize(loc_instance).is_valid()

    def test_result_is_homogeneous(self, loc_instance):
        padded = homogenize(loc_instance)
        for category in padded.hierarchy.categories:
            signatures = {
                ancestor_signature(padded, m) for m in padded.members(category)
            }
            assert len(signatures) <= 1, category

    def test_real_members_keep_their_rollups(self, loc_instance):
        padded = homogenize(loc_instance)
        for member in loc_instance.all_members():
            for category in reached_categories(loc_instance, member):
                original = loc_instance.ancestor_in(member, category)
                assert padded.ancestor_in(member, category) == original

    def test_homogeneous_input_is_untouched(self, chain_instance):
        padded = homogenize(chain_instance)
        assert len(padded) == len(chain_instance)
        assert not any(is_null_member(m) for m in padded.all_members())

    def test_washington_gets_null_chain(self, loc_instance):
        padded = homogenize(loc_instance)
        assert padded.ancestor_in("Washington", "State") is not None
        state = padded.ancestor_in("Washington", "State")
        assert is_null_member(state)

    def test_cyclic_hierarchy_rejected(self):
        g = HierarchySchema(
            ["A", "B"],
            [("A", "B"), ("B", "A"), ("A", ALL), ("B", ALL)],
        )
        d = DimensionInstance(g, {"a": "A"}, [("a", "all")])
        with pytest.raises(SchemaError):
            homogenize(d)

    def test_disagreeing_descendants_rejected(self):
        # City c1 sits in a sale region, so every city must be padded into
        # SaleRegion - but c2's stores roll into *different* sale regions,
        # so no single (null) region works without splitting c2.
        g = HierarchySchema(
            ["Store", "City", "SaleRegion"],
            [
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "SaleRegion"),
                ("City", ALL),
                ("SaleRegion", ALL),
            ],
        )
        d = DimensionInstance(
            g,
            {
                "s0": "Store",
                "s1": "Store",
                "s2": "Store",
                "c1": "City",
                "c2": "City",
                "r1": "SaleRegion",
                "r2": "SaleRegion",
            },
            [
                ("s0", "c1"),
                ("c1", "r1"),
                ("s1", "c2"),
                ("s2", "c2"),
                ("s1", "r1"),
                ("s2", "r2"),
            ],
        )
        with pytest.raises(SchemaError):
            homogenize(d)


class TestRequiredFixpoint:
    """Regression: requirements must be re-derived to a fixpoint.

    ``pad_chain`` routes through intermediate categories and mints nulls
    there, so the per-category requirement sets computed once up-front go
    stale mid-run: a null minted in an intermediate category carries an
    ancestor category some of its real siblings never reach, and a single
    bottom-up pass leaves those siblings unpadded - a *heterogeneous*
    "homogenized" instance.
    """

    #: Deterministic falsifier (7 categories / 6 constraints / 18
    #: members).  Before the fixpoint fix, category c1 of the padded
    #: result carried two ancestor signatures ({All,c5} and {All,c2,c5}).
    CONFIG = RandomSchemaConfig(
        n_categories=6,
        n_layers=3,
        extra_edge_prob=0.4,
        into_fraction=0.5,
        choice_constraint_prob=0.7,
        seed=880,
    )

    def _pinned_instance(self):
        schema = random_schema(self.CONFIG)
        bottom = sorted(schema.hierarchy.bottom_categories())[0]
        return instance_from_frozen(schema, bottom, copies=1, fan_out=1)

    def test_pinned_falsifier_shape(self):
        instance = self._pinned_instance()
        schema = random_schema(self.CONFIG)
        assert len(schema.hierarchy.categories) == 7
        assert len(schema.constraints) == 6
        assert len(instance) == 18

    def test_pinned_falsifier_is_homogenized(self):
        padded = homogenize(self._pinned_instance())
        assert padded.is_valid()
        for category in padded.hierarchy.categories:
            signatures = {
                ancestor_signature(padded, m) for m in padded.members(category)
            }
            assert len(signatures) <= 1, (category, signatures)

    def test_pinned_falsifier_keeps_real_rollups(self):
        instance = self._pinned_instance()
        padded = homogenize(instance)
        for member in instance.all_members():
            for category in reached_categories(instance, member):
                original = instance.ancestor_in(member, category)
                assert padded.ancestor_in(member, category) == original

    def test_homogenize_is_idempotent_on_pinned_falsifier(self):
        padded = homogenize(self._pinned_instance())
        again = homogenize(padded)
        assert len(again) == len(padded)


class TestPaddingRestoresSummarizability:
    def test_state_province_view_becomes_safe(self, loc_instance):
        """The whole point of padding: after it, Country can be derived
        from {State, Province} - the nulls carry Washington's sales."""
        padded = homogenize(loc_instance)
        rows = [(m, {"sales": 1.0}) for m in sorted(loc_instance.base_members())]
        facts = FactTable(padded, rows)
        direct = cube_view(facts, "Country", SUM, "sales")
        state = cube_view(facts, "State", SUM, "sales")
        derived = recombine(padded, "Country", [state], SUM)
        # After padding every store reaches a (possibly null) state.
        assert views_equal(direct, derived)


class TestReport:
    def test_report_counts(self, loc_instance):
        report = padding_report(loc_instance)
        assert report.padded_members > report.original_members
        assert report.null_members > 0
        assert 0 < report.null_fraction < 1
        assert report.member_blowup > 1.0

    def test_report_on_homogeneous_instance(self, chain_instance):
        report = padding_report(chain_instance)
        assert report.null_members == 0
        assert report.member_blowup == 1.0

    def test_empty_report_has_no_division_error(self):
        # Degenerate counts must not raise ZeroDivisionError: an empty
        # instance has no growth (blowup 1.0) and no nulls (fraction 0.0).
        report = PaddingReport(
            original_members=0,
            padded_members=0,
            null_members=0,
            original_edges=0,
            padded_edges=0,
        )
        assert report.member_blowup == 1.0
        assert report.null_fraction == 0.0

    def test_report_on_memberless_instance(self):
        g = HierarchySchema(["A"], [("A", ALL)])
        report = padding_report(DimensionInstance(g, {}, []))
        assert report.member_blowup == 1.0
        assert report.null_fraction == 0.0
