"""Split constraint tests ([6]) and the expressiveness gap (E15)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    SplitConstraint,
    gap_hierarchy,
    gap_instances,
    infer_split_constraints,
    same_split_descriptions,
    split_description,
)
from repro.constraints import parse, satisfies
from repro.errors import SchemaError


class TestSplitDescription:
    def test_store_sets_in_location(self, loc_instance):
        observed = split_description(loc_instance, "Store")
        assert frozenset(
            {"City", "Province", "SaleRegion", "Country", "All"}
        ) in observed  # Canadian stores
        assert frozenset(
            {"City", "SaleRegion", "Country", "All"}
        ) in observed  # Washington / Texas stores
        assert len(observed) == 3

    def test_unknown_category(self, loc_instance):
        with pytest.raises(SchemaError):
            split_description(loc_instance, "Galaxy")


class TestSatisfaction:
    def test_tightest_description_holds(self, loc_instance):
        for constraint in infer_split_constraints(loc_instance).values():
            assert constraint.holds_in(loc_instance)

    def test_looser_constraint_holds(self, loc_instance):
        observed = split_description(loc_instance, "Store")
        looser = SplitConstraint(
            "Store", observed | {frozenset({"City", "All"})}
        )
        assert looser.holds_in(loc_instance)

    def test_tighter_constraint_fails(self, loc_instance):
        tighter = SplitConstraint(
            "Store", frozenset({frozenset({"City", "All"})})
        )
        assert not tighter.holds_in(loc_instance)

    def test_normalized_adds_all(self):
        constraint = SplitConstraint("Store", frozenset({frozenset({"City"})}))
        normalized = constraint.normalized()
        assert frozenset({"City", "All"}) in normalized.allowed


class TestExpressivenessGap:
    def test_instances_are_valid(self):
        left, right = gap_instances()
        assert left.is_valid()
        assert right.is_valid()
        assert left.hierarchy == gap_hierarchy()

    def test_split_descriptions_identical(self):
        left, right = gap_instances()
        assert same_split_descriptions(left, right)

    def test_dimension_constraint_distinguishes(self):
        left, right = gap_instances()
        witness = parse("B = 'k' implies not (B -> E)")
        assert satisfies(left, witness)
        assert not satisfies(right, witness)

    def test_every_inferred_split_holds_in_both(self):
        left, right = gap_instances()
        for constraint in infer_split_constraints(left).values():
            assert constraint.holds_in(right)
        for constraint in infer_split_constraints(right).values():
            assert constraint.holds_in(left)

    def test_different_hierarchies_not_comparable(self, loc_instance, chain_instance):
        assert not same_split_descriptions(loc_instance, chain_instance)


class TestEmbedding:
    """Split constraints are a special case of dimension constraints: the
    embedding must agree with native split satisfaction everywhere."""

    def test_inferred_splits_embed_and_hold(self, loc_instance):
        from repro.baselines import split_to_dimension_constraint
        from repro.constraints import satisfies

        for category, constraint in infer_split_constraints(loc_instance).items():
            node = split_to_dimension_constraint(
                constraint, loc_instance.hierarchy
            )
            assert satisfies(loc_instance, node, root=category), category

    def test_embedding_rejects_what_splits_reject(self, loc_instance):
        from repro.baselines import split_to_dimension_constraint
        from repro.constraints import satisfies

        # A split that forbids the Washington shape.
        tighter = SplitConstraint(
            "Store",
            frozenset(
                {
                    frozenset({"City", "Province", "SaleRegion", "Country", "All"}),
                    frozenset({"City", "State", "SaleRegion", "Country", "All"}),
                }
            ),
        )
        assert not tighter.holds_in(loc_instance)
        node = split_to_dimension_constraint(tighter, loc_instance.hierarchy)
        assert not satisfies(loc_instance, node, root="Store")

    def test_agreement_on_gap_instances(self):
        from repro.baselines import split_to_dimension_constraint
        from repro.constraints import satisfies

        left, right = gap_instances()
        for source in (left, right):
            for category, constraint in infer_split_constraints(source).items():
                node = split_to_dimension_constraint(constraint, source.hierarchy)
                for target in (left, right):
                    assert constraint.holds_in(target) == satisfies(
                        target, node, root=category
                    ), (category,)

    def test_embedding_usable_in_schema_reasoning(self, loc_schema, loc_instance):
        """The embedded constraint can join SIGMA and drive DIMSAT."""
        from repro.baselines import split_to_dimension_constraint
        from repro.core import enumerate_frozen_dimensions

        splits = infer_split_constraints(loc_instance)
        node = split_to_dimension_constraint(splits["Store"], loc_schema.hierarchy)
        extended = loc_schema.with_constraints([node])
        # The observed shapes match the schema's frozen dimensions, so
        # nothing is lost by adding the inferred split.
        frozen = enumerate_frozen_dimensions(extended, "Store")
        assert len(frozen) == 4
