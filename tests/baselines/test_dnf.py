"""DNF-flattening tests (the Lehner et al. baseline) and the E14 loss
measurement."""

from __future__ import annotations

import pytest

from repro.baselines import dnf_loss_report, flatten_to_dnf, total_edges
from repro.core import ALL


class TestTotalEdges:
    def test_total_edges_of_location(self, loc_instance):
        totals = total_edges(loc_instance)
        assert ("Store", "City") in totals
        assert ("Province", "SaleRegion") in totals
        assert ("SaleRegion", "Country") in totals
        assert ("Country", ALL) in totals
        # Heterogeneous edges are dropped.
        assert ("Store", "SaleRegion") not in totals
        assert ("City", "State") not in totals
        assert ("City", "Country") not in totals

    def test_homogeneous_chain_keeps_everything(self, chain_instance):
        assert total_edges(chain_instance) == chain_instance.hierarchy.edges


class TestFlatten:
    def test_location_flattens_to_store_city(self, loc_instance):
        result = flatten_to_dnf(loc_instance)
        assert result.retained_categories == frozenset({"Store", "City", ALL})
        assert sorted(result.moved_out) == [
            "Country",
            "Province",
            "SaleRegion",
            "State",
        ]

    def test_flat_instance_is_valid_and_homogeneous(self, loc_instance):
        flat = flatten_to_dnf(loc_instance).instance
        assert flat.is_valid()
        for category in flat.hierarchy.categories:
            signatures = {
                frozenset(
                    flat.category_of(a) for a in flat.ancestors_of(m)
                )
                for m in flat.members(category)
            }
            assert len(signatures) <= 1, category

    def test_flat_instance_keeps_retained_members(self, loc_instance):
        flat = flatten_to_dnf(loc_instance).instance
        assert flat.members("Store") == loc_instance.members("Store")
        assert flat.members("City") == loc_instance.members("City")

    def test_homogeneous_chain_unchanged(self, chain_instance):
        result = flatten_to_dnf(chain_instance)
        assert result.moved_out == frozenset()
        assert len(result.instance) == len(chain_instance)


class TestLossReport:
    def test_location_loses_country_pairs(self, loc_instance):
        report = dnf_loss_report(loc_instance)
        lost = set(report.lost_pairs)
        assert ("City", "Country") in lost
        assert ("SaleRegion", "Country") in lost
        assert report.loss_fraction > 0.5

    def test_surviving_pairs_within_retained(self, loc_instance):
        report = dnf_loss_report(loc_instance)
        assert ("Store", "City") in report.surviving_pairs

    def test_homogeneous_chain_loses_nothing(self, chain_instance):
        report = dnf_loss_report(chain_instance)
        assert report.lost_pairs == ()
        assert report.loss_fraction == 0.0
