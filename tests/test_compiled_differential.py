"""Differential tests: compiled tier == sequential kernel == brute force.

The :class:`~repro.core.compile.CompiledDecisionEngine` answers
decisions from a per-schema CNF artifact and an incremental SAT solver;
this file pins it, on hypothesis-generated random schemas, to the
sequential kernel and to the first-principles brute-force oracle for all
three decision problems - extending the PR 2 differential suite one tier
down the stack.

Also pinned: the seed-880 falsifier schema (the deterministic regression
input from the homogenize fixpoint bug - a heterogeneous 7-category
schema with choice constraints) and the Theorem 4 3-SAT encodings, where
the compiled verdict must track the CNF's own satisfiability.

One engine (and so one artifact store, with all its learned clauses)
serves every example: clause learning in one example must never leak a
wrong verdict into another.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import ALL
from repro.baselines.bruteforce import brute_force_implies, brute_force_satisfiable
from repro.core.compile import CompiledArtifactStore, CompiledDecisionEngine
from repro.core.dimsat import dimsat
from repro.core.implication import implies
from repro.core.summarizability import (
    is_summarizable_in_schema,
    summarizability_constraints,
)
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.sat_encoding import ROOT, encode, random_3cnf

#: The pinned deterministic falsifier (see tests/baselines/test_homogenize).
SEED_880 = RandomSchemaConfig(
    n_categories=6,
    n_layers=3,
    extra_edge_prob=0.4,
    into_fraction=0.5,
    choice_constraint_prob=0.7,
    seed=880,
)


@pytest.fixture(scope="module")
def engine():
    """One compiled engine for the whole module: learned clauses and
    artifacts accumulate across examples, exactly like a long-lived
    server process."""
    return CompiledDecisionEngine(cache=None, store=CompiledArtifactStore())


@st.composite
def small_schemas(draw):
    """Random small symbolic schemas (kept within reach of the
    exponential brute-force oracle)."""
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.3, 0.6])),
        skip_edge_prob=draw(st.sampled_from([0.0, 0.2])),
        into_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        n_constants=draw(st.integers(min_value=1, max_value=2)),
        attributed_fraction=draw(st.sampled_from([0.0, 0.5])),
        equality_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_schema(config)


def _brute_force_summarizable(schema, target, sources):
    for bottom, node in summarizability_constraints(
        schema.hierarchy, target, sources
    ):
        if bottom == ALL:
            continue
        if not brute_force_implies(schema, node):
            return False
    return True


@settings(max_examples=200, deadline=None)
@given(small_schemas())
def test_dimsat_three_way(engine, schema):
    """compiled == sequential == brute force for every category."""
    for category in sorted(schema.hierarchy.categories - {ALL}):
        oracle = brute_force_satisfiable(schema, category)
        assert dimsat(schema, category).satisfiable == oracle, category
        assert engine.dimsat(schema, category).satisfiable == oracle, category


@settings(max_examples=60, deadline=None)
@given(small_schemas())
def test_implication_three_way(engine, schema):
    """Each SIGMA constraint re-asked as a query: compiled == sequential
    == brute force (these exercise the activation-literal query path)."""
    for node in schema.constraints[:3]:
        oracle = brute_force_implies(schema, node)
        assert implies(schema, node).implied == oracle, node
        assert engine.implies(schema, node).implied == oracle, node


@settings(max_examples=40, deadline=None)
@given(small_schemas(), st.integers(min_value=0, max_value=1_000))
def test_summarizability_three_way(engine, schema, pick):
    categories = sorted(schema.hierarchy.categories - {ALL})
    target = categories[pick % len(categories)]
    pool = [c for c in categories if c != target]
    sources = pool[: 1 + pick % 2] if pool else []
    oracle = _brute_force_summarizable(schema, target, sources)
    assert (
        is_summarizable_in_schema(schema, target, sources, cache=None) == oracle
    )
    assert engine.is_summarizable(schema, target, sources) == oracle


class TestPinnedSchemas:
    def test_seed_880_falsifier(self, engine):
        """Full three-way sweep over the pinned falsifier schema."""
        schema = random_schema(SEED_880)
        assert len(schema.hierarchy.categories) == 7
        for category in sorted(schema.hierarchy.categories - {ALL}):
            oracle = brute_force_satisfiable(schema, category)
            assert dimsat(schema, category).satisfiable == oracle
            assert engine.dimsat(schema, category).satisfiable == oracle
        for node in schema.constraints:
            oracle = brute_force_implies(schema, node)
            assert implies(schema, node).implied == oracle
            assert engine.implies(schema, node).implied == oracle

    @pytest.mark.parametrize("seed", range(25))
    def test_theorem4_encodings(self, engine, seed):
        """Compiled root satisfiability of ``encode(phi)`` equals the
        formula's own satisfiability (Theorem 4, now decided by SAT on
        both sides of the reduction)."""
        cnf = random_3cnf(4, 6 + (seed * 7) % 12, seed=seed)
        schema = encode(cnf)
        oracle = cnf.brute_force_satisfiable()
        assert dimsat(schema, ROOT).satisfiable == oracle
        assert engine.dimsat(schema, ROOT).satisfiable == oracle

    def test_no_fallbacks_were_needed(self, engine):
        """Every schema in this module is symbolic: the compiled tier
        must have served everything itself."""
        assert engine.stats.fallbacks == 0
