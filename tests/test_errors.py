"""Exception-hierarchy contract tests.

Callers are promised one catch-all (`ReproError`) and meaningful
subclasses; these tests pin the hierarchy and the metadata each error
carries.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ConstraintError,
    ConstraintSyntaxError,
    InstanceError,
    NavigationError,
    OlapError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            SchemaError,
            InstanceError,
            ConstraintSyntaxError,
            ConstraintError,
            OlapError,
            NavigationError,
        ],
    )
    def test_everything_is_a_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_navigation_is_olap(self):
        assert issubclass(NavigationError, OlapError)

    def test_one_except_clause_catches_all(self):
        from repro.core import DimensionSchema, HierarchySchema

        with pytest.raises(ReproError):
            HierarchySchema(["A"], [("A", "B")])
        with pytest.raises(ReproError):
            DimensionSchema(
                HierarchySchema(["A"], [("A", "All")]), ["A -> Ghost"]
            )


class TestMetadata:
    def test_instance_error_carries_condition(self):
        error = InstanceError("(C2) partitioning", "member x")
        assert error.condition == "(C2) partitioning"
        assert "(C2) partitioning" in str(error)

    def test_syntax_error_carries_position(self):
        error = ConstraintSyntaxError("boom", "Store ->", 6)
        assert error.position == 6
        assert error.text == "Store ->"
        assert "position 6" in str(error)

    def test_syntax_error_without_position(self):
        error = ConstraintSyntaxError("boom")
        assert error.position == -1
        assert "position" not in str(error)


class TestErrorPathsAcrossTheLibrary:
    def test_parser_raises_only_syntax_errors(self):
        from repro.constraints import parse

        for text in ("", ")", "a -> ", "1 -> 2", "x = = y", "'dangling",
                     "one(", "not", "@@", "a . . b"):
            with pytest.raises(ConstraintSyntaxError):
                parse(text)

    def test_semantics_raises_constraint_error_on_aliens(self, loc_instance):
        from repro.constraints import satisfies_at

        with pytest.raises(ConstraintError):
            satisfies_at(loc_instance, "s1", object())  # type: ignore[arg-type]

    def test_olap_errors_from_engine(self, loc_schema, loc_instance):
        from repro.olap import OlapEngine

        engine = OlapEngine(loc_schema, loc_instance, [("s1", {"kg": 1.0})])
        with pytest.raises(OlapError):
            engine.query("Country", "MEDIAN", "kg")
        with pytest.raises(OlapError):
            engine.materialize("Country", "SUM", "missing-measure")
