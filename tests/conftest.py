"""Shared fixtures: the paper's running example and small synthetic
schemas used across the suite.

Also registers the ``ci`` hypothesis profile: derandomized with a fixed
seed so CI runs are reproducible.  Activated via
``HYPOTHESIS_PROFILE=ci`` in the environment.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.core import DimensionInstance, DimensionSchema, HierarchySchema
from repro.generators.location import (
    location_hierarchy,
    location_instance,
    location_schema,
)

settings.register_profile(
    "ci", derandomize=True, deadline=None, print_blob=True
)
if os.environ.get("HYPOTHESIS_PROFILE"):
    settings.load_profile(os.environ["HYPOTHESIS_PROFILE"])


@pytest.fixture(scope="session")
def loc_hierarchy() -> HierarchySchema:
    """The hierarchy schema of Figure 1(A)."""
    return location_hierarchy()


@pytest.fixture(scope="session")
def loc_schema() -> DimensionSchema:
    """The dimension schema locationSch of Figure 3."""
    return location_schema()


@pytest.fixture()
def loc_instance() -> DimensionInstance:
    """The dimension instance of Figure 1(B) (fresh per test: instances
    cache ancestor sets and some tests poke at internals)."""
    return location_instance()


@pytest.fixture(scope="session")
def chain_hierarchy() -> HierarchySchema:
    """A plain homogeneous chain: Day -> Month -> Year -> All."""
    return HierarchySchema.from_paths(["Day", "Month", "Year"])


@pytest.fixture(scope="session")
def diamond_hierarchy() -> HierarchySchema:
    """A diamond: A -> B -> D, A -> C -> D, D -> All."""
    return HierarchySchema(
        ["A", "B", "C", "D"],
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"), ("D", "All")],
    )


@pytest.fixture()
def chain_instance(chain_hierarchy) -> DimensionInstance:
    """Two days in one month in one year."""
    return DimensionInstance(
        chain_hierarchy,
        members={
            "d1": "Day",
            "d2": "Day",
            "jan": "Month",
            "y2020": "Year",
        },
        child_parent=[("d1", "jan"), ("d2", "jan"), ("jan", "y2020")],
    )
