"""The metamorphic soak harness: short deterministic soaks per engine,
faulted soaks, the violation machinery, and the CLI surface.

Long soaks live behind the ``slow`` marker (the CI soak-smoke job runs
them); tier-1 keeps to step-capped runs that finish in seconds.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.faults import inject_faults
from repro.core import soak as soak_module
from repro.core.soak import (
    SOAK_ENGINES,
    InvariantViolation,
    SoakConfig,
    SoakReport,
    build_soak_engine,
    oracle_decide,
    run_soak,
)
from repro.errors import ReproError
from repro.generators.adversarial import FAMILIES
from repro.io.json_io import schema_from_json


FAST = dict(seconds=600.0, max_steps=40, seed=3)


class TestConfig:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ReproError):
            SoakConfig(engine="quantum")

    def test_rejects_negative_duration(self):
        with pytest.raises(ReproError):
            SoakConfig(seconds=-1)

    def test_rejects_zero_cadence(self):
        with pytest.raises(ReproError):
            SoakConfig(check_every=0)

    @pytest.mark.parametrize("engine", SOAK_ENGINES)
    def test_build_engine(self, engine):
        resilient = build_soak_engine(SoakConfig(engine=engine))
        try:
            assert resilient.retry.max_attempts == 3
        finally:
            resilient.shutdown()


class TestRunSoak:
    @pytest.mark.parametrize("engine", SOAK_ENGINES)
    def test_clean_soak_per_engine(self, engine):
        report = run_soak(SoakConfig(engine=engine, **FAST))
        assert report.ok
        assert report.steps == 40
        assert report.wrong_verdicts == 0
        assert report.violations == []
        assert report.decisions > 0

    def test_every_family_gets_traffic(self):
        # min_passes guarantees one op per case even with max_steps unset
        # and a zero-second budget.
        report = run_soak(
            SoakConfig(engine="sequential", seconds=0.0, min_passes=1, seed=0)
        )
        assert report.steps == len(FAMILIES)
        assert report.families == sorted(FAMILIES)

    def test_deterministic_given_step_cap(self):
        one = run_soak(SoakConfig(engine="sequential", **FAST))
        two = run_soak(SoakConfig(engine="sequential", **FAST))
        assert one.ops_by_kind == two.ops_by_kind
        assert one.decisions == two.decisions
        assert one.edits == two.edits

    def test_family_subset(self):
        report = run_soak(
            SoakConfig(
                engine="sequential",
                families=["np-boundary", "deep-chain"],
                **FAST,
            )
        )
        assert report.ok
        assert report.families == ["deep-chain", "np-boundary"]

    def test_report_as_dict_round_trips(self):
        report = run_soak(SoakConfig(engine="sequential", **FAST))
        document = json.loads(json.dumps(report.as_dict()))
        assert document["ok"] is True
        assert document["steps"] == 40
        assert document["engine"] == "sequential"
        assert set(document["ops_by_kind"]) <= {
            "dimsat",
            "implies",
            "summarizable",
            "navigate",
            "edit",
        }

    def test_render_mentions_violations(self):
        report = SoakReport(engine="compiled", seed=0)
        report.violations.append(
            InvariantViolation("cache-clean", "case-x", 7, "stale verdict")
        )
        text = report.render()
        assert "VIOLATIONS" in text and "cache-clean" in text
        assert not report.ok


class TestFaultedSoak:
    @pytest.mark.parametrize(
        "engine,spec",
        [
            ("compiled", "worker-crash:p=0.3,seed=7;cache-store:p=0.2"),
            ("parallel", "worker-crash:p=0.4,seed=3;pool-exhaustion:p=0.2"),
        ],
    )
    def test_faults_never_produce_wrong_verdicts(self, engine, spec):
        with inject_faults(spec):
            report = run_soak(SoakConfig(engine=engine, **FAST))
        assert report.wrong_verdicts == 0
        assert report.violations == []

    def test_oracle_is_fault_immune(self):
        case = FAMILIES["deep-chain"](seed=0)
        clean = oracle_decide(case.schema, ("dimsat", case.root))
        with inject_faults("worker-crash:p=1.0,seed=1;oserror:p=1.0"):
            faulted = oracle_decide(case.schema, ("dimsat", case.root))
        assert faulted == clean


class TestViolationMachinery:
    """A harness that can never fail is not a harness: break the oracle
    on purpose and check the soak notices, reports, and shrinks."""

    def test_wrong_verdict_detected_and_falsifier_emitted(
        self, monkeypatch, tmp_path
    ):
        real_oracle = oracle_decide

        def lying_oracle(schema, request):
            return not real_oracle(schema, request)

        monkeypatch.setattr(soak_module, "oracle_decide", lying_oracle)
        report = run_soak(
            SoakConfig(
                engine="sequential",
                families=["np-boundary"],
                falsifier_dir=str(tmp_path),
                seconds=600.0,
                max_steps=6,
                seed=3,
            )
        )
        assert not report.ok
        assert report.wrong_verdicts > 0
        kinds = {v.invariant for v in report.violations}
        assert "wrong-verdict" in kinds
        emitted = sorted(tmp_path.glob("*.json"))
        assert emitted, "a reproducible divergence should shrink to a file"
        # Every emitted falsifier is a loadable schema document.
        for path in emitted:
            document = json.loads(path.read_text())
            assert "_falsifier" in document
            schema = schema_from_json(path.read_text())
            assert schema.hierarchy.categories

    def test_unknown_outcomes_are_allowed(self):
        # A budget so small every decision degrades to UNKNOWN: that must
        # not count as wrong or as a violation.
        report = run_soak(
            SoakConfig(
                engine="parallel",
                families=["np-boundary"],
                budget_ms=0.0,
                retries=1,
                seconds=600.0,
                max_steps=8,
                seed=3,
            )
        )
        assert report.wrong_verdicts == 0
        assert report.violations == []
        assert report.unknown > 0


class TestSoakCli:
    def test_cli_soak_exits_zero_and_writes_report(self, tmp_path, capsys):
        json_path = tmp_path / "report.json"
        code = main(
            [
                "soak",
                "--seconds",
                "600",
                "--max-steps",
                "25",
                "--seed",
                "3",
                "--engine",
                "sequential",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 invariant violations" in out
        document = json.loads(json_path.read_text())
        assert document["ok"] is True
        assert document["steps"] == 25

    def test_cli_flags_after_subcommand_reach_the_engine(self, tmp_path):
        # The acceptance-shaped invocation: globals after `soak`.
        telemetry = tmp_path / "tel"
        code = main(
            [
                "soak",
                "--seconds",
                "600",
                "--max-steps",
                "20",
                "--engine",
                "compiled",
                "--inject-faults",
                "worker-crash:p=0.3,seed=7",
                "--telemetry-dir",
                str(telemetry),
            ]
        )
        assert code == 0
        report = json.loads((telemetry / "soak_report.json").read_text())
        assert report["engine"] == "compiled"
        assert (telemetry / "audit.jsonl").exists()

    def test_cli_soak_audit_log_replays_clean(self, tmp_path, capsys):
        telemetry = tmp_path / "tel"
        assert (
            main(
                [
                    "--telemetry-dir",
                    str(telemetry),
                    "soak",
                    "--seconds",
                    "600",
                    "--max-steps",
                    "30",
                    "--seed",
                    "5",
                    "--engine",
                    "compiled",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["audit-verify", str(telemetry)]) == 0
        out = capsys.readouterr().out
        assert "divergences      0" in out

    def test_cli_unknown_family_is_usage_error(self, capsys):
        code = main(["soak", "--families", "nope", "--max-steps", "1"])
        assert code == 2
        assert "unknown adversarial families" in capsys.readouterr().err


@pytest.mark.slow
class TestLongSoak:
    """The CI soak-smoke shape, one engine per test."""

    @pytest.mark.parametrize("engine", SOAK_ENGINES)
    def test_thirty_second_soak(self, engine):
        report = run_soak(
            SoakConfig(engine=engine, seconds=30.0, seed=0, per_family=1)
        )
        assert report.ok
        assert report.steps > len(FAMILIES)

    def test_thirty_second_faulted_soak(self):
        with inject_faults("worker-crash:p=0.3,seed=7;cache-store:p=0.2"):
            report = run_soak(
                SoakConfig(engine="compiled", seconds=30.0, seed=1)
            )
        assert report.wrong_verdicts == 0
        assert report.violations == []
