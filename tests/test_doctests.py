"""Run the doctests embedded in the library's docstrings.

Docstring examples are part of the public documentation; running them
here keeps them honest the same way tests/test_tutorial.py guards the
tutorial.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULES = [
    "repro.core.hierarchy",
    "repro.core.instance",
    "repro.core.schema",
    "repro.core.dimsat",
    "repro.core.implication",
    "repro.core.summarizability",
    "repro.core.explain",
    "repro.constraints.parser",
    "repro.olap.cubeview",
    "repro.olap.facttable",
    "repro.olap.engine",
    "repro.io.csvload",
    "repro.io.ascii",
    "repro.baselines.bruteforce",
    "repro.baselines.homogenize",
    "repro.baselines.dnf",
]


@pytest.mark.parametrize("name", MODULES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest failures in {name}"


def test_doctests_exist_somewhere():
    """At least a handful of modules actually carry examples (guards
    against the list silently rotting to example-free modules)."""
    total = 0
    for name in MODULES:
        module = importlib.import_module(name)
        finder = doctest.DocTestFinder()
        total += sum(len(t.examples) for t in finder.find(module))
    assert total >= 10
