"""Printer tests: rendering of every node type and the parse/unparse
round trip on hand-written constraints."""

from __future__ import annotations

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    And,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    Xor,
    parse,
    unparse,
)


class TestRendering:
    def test_path_atom(self):
        assert unparse(PathAtom("Store", ("City", "Province"))) == (
            "Store -> City -> Province"
        )

    def test_rolls_up(self):
        assert unparse(RollsUpAtom("Store", "SaleRegion")) == "Store.SaleRegion"

    def test_through(self):
        assert unparse(ThroughAtom("Store", "City", "Country")) == "Store.City.Country"

    def test_equality_qualified(self):
        assert unparse(EqualityAtom("Store", "Country", "Canada")) == (
            "Store.Country = 'Canada'"
        )

    def test_equality_self(self):
        assert unparse(EqualityAtom("City", "City", "Washington")) == (
            "City = 'Washington'"
        )

    def test_equality_escapes_quotes(self):
        assert unparse(EqualityAtom("City", "City", "O'Brien")) == "City = 'O''Brien'"

    def test_constants(self):
        assert unparse(TRUE) == "true"
        assert unparse(FALSE) == "false"

    def test_not(self):
        a = PathAtom("A", ("B",))
        assert unparse(Not(a)) == "not A -> B"

    def test_nested_or_in_and_gets_parens(self):
        a, b, c = (PathAtom("A", (x,)) for x in ("B", "C", "D"))
        assert unparse(And((a, Or((b, c))))) == "A -> B and (A -> C or A -> D)"

    def test_and_in_or_needs_no_parens(self):
        a, b, c = (PathAtom("A", (x,)) for x in ("B", "C", "D"))
        assert unparse(Or((a, And((b, c))))) == "A -> B or A -> C and A -> D"

    def test_exactly_one(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        assert unparse(ExactlyOne((a, b))) == "one(A -> B, A -> C)"

    def test_implies(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        assert unparse(Implies(a, b)) == "A -> B implies A -> C"

    def test_repr_delegates_to_unparse(self):
        node = parse("A -> B or A -> C")
        assert repr(node) == "A -> B or A -> C"


ROUND_TRIP_CASES = [
    "Store -> City",
    "Store -> City -> Province",
    "Store.SaleRegion",
    "Store.City.Country",
    "Store.Country = 'Canada'",
    "City = 'Washington'",
    "not Store -> City",
    "not not Store -> City",
    "A -> B and A -> C",
    "A -> B or A -> C and A -> D",
    "A -> B and (A -> C or A -> D)",
    "A -> B implies A -> C implies A -> D",
    "A -> B iff A -> C",
    "A -> B xor A -> C xor A -> D",
    "one(A -> B, A -> C, A -> D)",
    "City = 'Washington' iff City -> Country",
    "City = 'Washington' implies City.Country = 'USA'",
    "State.Country = 'Mexico' or State.Country = 'USA'",
    "State.Country = 'Mexico' iff State -> SaleRegion",
    "not (A -> B and A -> C)",
    "one(A -> B and A -> C, not A -> D)",
    "true",
    "false",
    "A -> B implies (A -> C implies A -> D) and A -> E",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_CASES)
    def test_parse_unparse_parse_fixpoint(self, text):
        node = parse(text)
        rendered = unparse(node)
        assert parse(rendered) == node

    @pytest.mark.parametrize("text", ROUND_TRIP_CASES)
    def test_unparse_is_canonical(self, text):
        node = parse(text)
        rendered = unparse(node)
        assert unparse(parse(rendered)) == rendered
