"""Composed-atom expansion (Section 3.1 / 3.3) and Definition 3
validation."""

from __future__ import annotations

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    Or,
    PathAtom,
    PathCache,
    RollsUpAtom,
    ThroughAtom,
    expand,
    parse,
    validate_constraint,
)
from repro.errors import ConstraintError


class TestRollsUpExpansion:
    def test_same_category_is_true(self, loc_hierarchy):
        assert expand(RollsUpAtom("Store", "Store"), loc_hierarchy) == TRUE

    def test_no_path_is_false(self, loc_hierarchy):
        assert expand(RollsUpAtom("Country", "Store"), loc_hierarchy) == FALSE

    def test_single_path_is_bare_atom(self, loc_hierarchy):
        node = expand(RollsUpAtom("Province", "SaleRegion"), loc_hierarchy)
        assert node == PathAtom("Province", ("SaleRegion",))

    def test_multiple_paths_disjoined(self, loc_hierarchy):
        node = expand(RollsUpAtom("Store", "SaleRegion"), loc_hierarchy)
        assert isinstance(node, Or)
        paths = {atom.full_path for atom in node.atoms()}
        assert ("Store", "SaleRegion") in paths
        assert ("Store", "City", "Province", "SaleRegion") in paths
        assert ("Store", "City", "State", "SaleRegion") in paths
        assert len(paths) == 3

    def test_country_expansion_counts_paths(self, loc_hierarchy):
        node = expand(RollsUpAtom("Store", "Country"), loc_hierarchy)
        paths = {atom.full_path for atom in node.atoms()}
        # Store -> City -> Country, Store -> City -> State -> Country,
        # Store -> City -> {State, Province} -> SaleRegion -> Country,
        # Store -> SaleRegion -> Country.
        assert len(paths) == 5


class TestThroughExpansion:
    def test_all_equal_true(self, loc_hierarchy):
        assert expand(ThroughAtom("Store", "Store", "Store"), loc_hierarchy) == TRUE

    def test_target_is_root_false(self, loc_hierarchy):
        assert expand(ThroughAtom("Store", "City", "Store"), loc_hierarchy) == FALSE

    def test_via_is_root_reduces_to_rollsup(self, loc_hierarchy):
        direct = expand(ThroughAtom("Store", "Store", "Country"), loc_hierarchy)
        rolls = expand(RollsUpAtom("Store", "Country"), loc_hierarchy)
        assert direct == rolls

    def test_via_equals_target(self, loc_hierarchy):
        via = expand(ThroughAtom("Store", "City", "City"), loc_hierarchy)
        rolls = expand(RollsUpAtom("Store", "City"), loc_hierarchy)
        assert via == rolls

    def test_distinct_keeps_only_paths_through_via(self, loc_hierarchy):
        node = expand(ThroughAtom("Store", "State", "Country"), loc_hierarchy)
        paths = {atom.full_path for atom in node.atoms()}
        assert all("State" in p[1:-1] for p in paths)
        assert ("Store", "City", "State", "Country") in paths
        assert ("Store", "City", "State", "SaleRegion", "Country") in paths
        assert len(paths) == 2

    def test_no_qualifying_path_is_false(self, loc_hierarchy):
        # No path from Province to Country through Store.
        assert (
            expand(ThroughAtom("Province", "Store", "Country"), loc_hierarchy) == FALSE
        )


class TestExpandTraversal:
    def test_expansion_recurses_into_connectives(self, loc_hierarchy):
        node = parse("Store.SaleRegion implies not Store.Country")
        expanded = expand(node, loc_hierarchy)
        for atom in expanded.atoms():
            assert isinstance(atom, PathAtom)

    def test_shared_cache_reused(self, loc_hierarchy):
        cache = PathCache(loc_hierarchy)
        expand(RollsUpAtom("Store", "Country"), loc_hierarchy, cache)
        first = cache.paths("Store", "Country")
        again = cache.paths("Store", "Country")
        assert first is again

    def test_plain_atoms_unchanged(self, loc_hierarchy):
        node = parse("Store -> City and Store.Country = 'Canada'")
        assert expand(node, loc_hierarchy) == node


class TestValidation:
    def test_valid_constraint_returns_root(self, loc_hierarchy):
        assert validate_constraint(loc_hierarchy, parse("Store -> City")) == "Store"

    def test_rejects_root_all(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("All -> Store"))

    def test_rejects_unknown_category_in_path(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store -> Galaxy"))

    def test_rejects_non_edge_path(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store -> Country"))

    def test_rejects_non_simple_path(self, loc_hierarchy):
        node = PathAtom("Store", ("City", "State", "City"))
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, node)

    def test_rejects_mixed_roots(self, loc_hierarchy):
        node = parse("Store -> City and City -> State")
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, node)

    def test_constant_needs_explicit_root(self, loc_hierarchy):
        from repro.constraints import TRUE

        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, TRUE)
        assert validate_constraint(loc_hierarchy, TRUE, root="Store") == "Store"

    def test_explicit_root_must_match(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store -> City"), root="City")

    def test_rejects_unknown_equality_category(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store.Galaxy = 'x'"))

    def test_rejects_unknown_composed_categories(self, loc_hierarchy):
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store.Galaxy"))
        with pytest.raises(ConstraintError):
            validate_constraint(loc_hierarchy, parse("Store.Galaxy.Country"))
