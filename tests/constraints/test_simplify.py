"""Simplifier, substitution, evaluation, and NNF tests."""

from __future__ import annotations

import itertools

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    And,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Not,
    Or,
    PathAtom,
    Xor,
    evaluate,
    nnf,
    parse,
    simplify,
    substitute,
)
from repro.constraints.simplify import constant_substitution, distinct_atoms

A = PathAtom("X", ("A",))
B = PathAtom("X", ("B",))
C = PathAtom("X", ("C",))


def all_assignments(atoms):
    atoms = sorted(set(atoms), key=repr)
    for bits in itertools.product((False, True), repeat=len(atoms)):
        yield dict(zip(atoms, bits))


def equivalent(left, right):
    atoms = set(left.atoms()) | set(right.atoms())
    for assignment in all_assignments(atoms):
        get = lambda atom: assignment[atom]
        if evaluate(left, get) != evaluate(right, get):
            return False
    return True


class TestSimplify:
    def test_constant_folding_not(self):
        assert simplify(Not(TRUE)) == FALSE
        assert simplify(Not(FALSE)) == TRUE
        assert simplify(Not(Not(A))) == A

    def test_and_folding(self):
        assert simplify(And((A, TRUE))) == A
        assert simplify(And((A, FALSE))) == FALSE
        assert simplify(And((TRUE, TRUE))) == TRUE

    def test_or_folding(self):
        assert simplify(Or((A, FALSE))) == A
        assert simplify(Or((A, TRUE))) == TRUE
        assert simplify(Or((FALSE, FALSE))) == FALSE

    def test_implies_folding(self):
        assert simplify(Implies(FALSE, A)) == TRUE
        assert simplify(Implies(TRUE, A)) == A
        assert simplify(Implies(A, TRUE)) == TRUE
        assert simplify(Implies(A, FALSE)) == Not(A)

    def test_iff_folding(self):
        assert simplify(Iff(A, TRUE)) == A
        assert simplify(Iff(A, FALSE)) == Not(A)
        assert simplify(Iff(TRUE, A)) == A
        assert simplify(Iff(FALSE, FALSE)) == TRUE

    def test_xor_folding(self):
        assert simplify(Xor(A, FALSE)) == A
        assert simplify(Xor(A, TRUE)) == Not(A)
        assert simplify(Xor(TRUE, TRUE)) == FALSE

    def test_exactly_one_folding(self):
        assert simplify(ExactlyOne((FALSE, A))) == A
        assert simplify(ExactlyOne((TRUE, FALSE))) == TRUE
        assert simplify(ExactlyOne((TRUE, TRUE))) == FALSE
        assert simplify(ExactlyOne((TRUE, A))) == Not(A)
        assert simplify(ExactlyOne((TRUE, A, B))) == And((Not(A), Not(B)))
        assert simplify(ExactlyOne((FALSE, FALSE))) == FALSE

    def test_nested_folding(self):
        node = Implies(And((A, TRUE)), Or((FALSE, B)))
        assert simplify(node) == Implies(A, B)

    def test_simplify_preserves_truth_tables(self):
        cases = [
            parse("(A -> B or false) and not false"),
            Implies(Or((A, FALSE)), And((B, TRUE))),
            ExactlyOne((A, FALSE, B, Not(TRUE))),
            Iff(Xor(A, FALSE), Not(Not(B))),
        ]
        for node in cases:
            folded = simplify(node)
            assert equivalent(node, folded)


class TestSubstitute:
    def test_pin_atom_to_constant(self):
        node = Implies(A, B)
        pinned = substitute(node, constant_substitution({A: True}))
        assert simplify(pinned) == B

    def test_substitution_is_deep(self):
        node = ExactlyOne((A, Not(B), Or((A, C))))
        pinned = substitute(node, constant_substitution({A: False}))
        assert A not in set(pinned.atoms())

    def test_none_keeps_atom(self):
        node = And((A, B))
        same = substitute(node, lambda atom: None)
        assert same == node

    def test_replace_atom_with_expression(self):
        node = Or((A, B))
        replaced = substitute(node, lambda atom: And((B, C)) if atom == A else None)
        assert replaced == Or((And((B, C)), B))


class TestEvaluate:
    def test_simple_truth_table(self):
        node = Implies(A, B)
        assert evaluate(node, {A: False, B: False}.__getitem__)
        assert not evaluate(node, {A: True, B: False}.__getitem__)

    def test_exactly_one_semantics(self):
        node = ExactlyOne((A, B, C))
        truths = {A: True, B: False, C: False}
        assert evaluate(node, truths.__getitem__)
        truths = {A: True, B: True, C: False}
        assert not evaluate(node, truths.__getitem__)
        truths = {A: False, B: False, C: False}
        assert not evaluate(node, truths.__getitem__)


class TestNnf:
    @pytest.mark.parametrize(
        "text",
        [
            "A -> B implies A -> C",
            "A -> B iff A -> C",
            "A -> B xor A -> C",
            "not (A -> B and A -> C)",
            "not (A -> B or not A -> C)",
            "one(A -> B, A -> C, A -> D)",
            "not one(A -> B, A -> C)",
            "A -> B implies (A -> C iff A -> D)",
        ],
    )
    def test_nnf_equivalent(self, text):
        node = parse(text)
        normal = nnf(node)
        assert equivalent(node, normal)

    def test_nnf_shape(self):
        node = parse("not (A -> B and A -> C)")
        normal = nnf(node)
        # Negations only directly above atoms.
        from repro.constraints import Node, walk

        for sub in walk(normal):
            if isinstance(sub, Not):
                assert isinstance(sub.child, PathAtom)

    def test_nnf_of_constants(self):
        assert nnf(Not(TRUE)) == FALSE
        assert nnf(Not(FALSE)) == TRUE


class TestHelpers:
    def test_distinct_atoms(self):
        found = distinct_atoms([And((A, B)), Or((B, C))])
        assert found == frozenset({A, B, C})

    def test_distinct_atoms_includes_equalities(self):
        e = EqualityAtom("X", "Y", "k")
        assert distinct_atoms([Implies(A, e)]) == frozenset({A, e})
