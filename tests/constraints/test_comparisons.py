"""Order predicates over attributes (the Section 6 extension).

"We could consider further built-in predicates over attributes, such as
an order relation, to extend equality atoms.  We would then be able to
express dependences such as: if the value of the price of a product is
less than a given amount, the product rolls up to some particular path in
the hierarchy schema."
"""

from __future__ import annotations

import pytest

from repro.constraints import (
    COMPARISON_OPS,
    ComparisonAtom,
    compare,
    parse,
    satisfies,
    satisfies_at,
    unparse,
)
from repro.core import ALL, DimensionInstance, HierarchySchema
from repro.errors import ConstraintSyntaxError


@pytest.fixture(scope="module")
def product_hierarchy():
    return HierarchySchema(
        ["SKU", "Premium", "Budget", "Department"],
        [
            ("SKU", "Premium"),
            ("SKU", "Budget"),
            ("Premium", "Department"),
            ("Budget", "Department"),
            ("Department", ALL),
        ],
    )


@pytest.fixture()
def priced_instance(product_hierarchy):
    # SKU names are their prices.
    members = {
        "sku-cheap": "SKU",
        "sku-dear": "SKU",
        "b1": "Budget",
        "p1": "Premium",
        "dept": "Department",
    }
    edges = [
        ("sku-cheap", "b1"),
        ("sku-dear", "p1"),
        ("b1", "dept"),
        ("p1", "dept"),
    ]
    names = {"sku-cheap": "9.99", "sku-dear": "250"}
    return DimensionInstance(product_hierarchy, members, edges, names=names)


class TestParsing:
    @pytest.mark.parametrize("op", COMPARISON_OPS)
    def test_all_operators_parse(self, op):
        node = parse(f"SKU.Price {op} 100")
        assert node == ComparisonAtom("SKU", "Price", op, "100")

    def test_self_comparison(self):
        assert parse("SKU < 100") == ComparisonAtom("SKU", "SKU", "<", "100")

    def test_negative_and_decimal_constants(self):
        assert parse("SKU < -3.5") == ComparisonAtom("SKU", "SKU", "<", "-3.5")

    def test_round_trip(self):
        for text in [
            "SKU < 100",
            "SKU.Price >= 9.99",
            "SKU.Price != 0 implies SKU -> Premium",
            "SKU < 10 or SKU > 100",
        ]:
            assert parse(unparse(parse(text))) == parse(text)

    def test_string_constant_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse("SKU.Price < 'cheap'")

    def test_builder(self):
        assert compare("SKU", "Price", "<", 100) == ComparisonAtom(
            "SKU", "Price", "<", "100"
        )

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            ComparisonAtom("SKU", "Price", "~", "1")

    def test_non_numeric_constant_rejected(self):
        with pytest.raises(ValueError):
            ComparisonAtom("SKU", "Price", "<", "cheap")


class TestAtomBehaviour:
    def test_compare_each_operator(self):
        cases = [
            ("<", 5.0, True), ("<", 10.0, False),
            ("<=", 10.0, True), ("<=", 10.5, False),
            (">", 10.5, True), (">", 10.0, False),
            (">=", 10.0, True), (">=", 5.0, False),
            ("!=", 5.0, True), ("!=", 10.0, False),
        ]
        for op, value, expected in cases:
            atom = ComparisonAtom("A", "B", op, "10")
            assert atom.compare(value) is expected, (op, value)

    def test_threshold(self):
        assert ComparisonAtom("A", "B", "<", "2.5").threshold == 2.5


class TestInstanceSemantics:
    def test_self_comparison_on_names(self, priced_instance):
        cheap = parse("SKU < 100")
        assert satisfies_at(priced_instance, "sku-cheap", cheap)
        assert not satisfies_at(priced_instance, "sku-dear", cheap)

    def test_ancestor_comparison(self, product_hierarchy):
        members = {"s": "SKU", "p": "Premium", "d": "Department"}
        edges = [("s", "p"), ("p", "d")]
        names = {"p": "500"}
        d = DimensionInstance(product_hierarchy, members, edges, names=names)
        assert satisfies_at(d, "s", parse("SKU.Premium > 100"))
        assert not satisfies_at(d, "s", parse("SKU.Premium < 100"))

    def test_non_numeric_name_never_compares(self, product_hierarchy):
        members = {"s": "SKU", "p": "Premium", "d": "Department"}
        edges = [("s", "p"), ("p", "d")]
        d = DimensionInstance(product_hierarchy, members, edges)
        assert not satisfies_at(d, "s", parse("SKU.Premium > 0"))
        assert not satisfies_at(d, "s", parse("SKU.Premium <= 0"))

    def test_missing_ancestor_never_compares(self, priced_instance):
        assert not satisfies_at(
            priced_instance, "sku-cheap", parse("SKU.Premium > 0")
        )

    def test_price_dependent_rollup(self, priced_instance):
        """The Section 6 motivating sentence, as a constraint."""
        rule = parse("SKU < 100 implies SKU -> Budget")
        assert satisfies(priced_instance, rule)
        inverse = parse("SKU >= 100 implies SKU -> Premium")
        assert satisfies(priced_instance, inverse)

    def test_equality_matches_numeric_names(self, priced_instance):
        # The numeric fallback: '250' as a name equals the constant 250.
        assert satisfies_at(priced_instance, "sku-dear", parse("SKU = 250"))
        assert satisfies_at(priced_instance, "sku-dear", parse("SKU = '250'"))
