"""AST structural tests: construction invariants, equality, hashing,
roots, and traversal."""

from __future__ import annotations

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    And,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    Xor,
    constraint_root,
    walk,
)


class TestConstruction:
    def test_path_atom_requires_nonempty_path(self):
        with pytest.raises(ValueError):
            PathAtom("Store", ())

    def test_path_atom_coerces_path_to_tuple(self):
        atom = PathAtom("Store", ["City", "Province"])
        assert atom.path == ("City", "Province")

    def test_path_atom_full_path_and_target(self):
        atom = PathAtom("Store", ("City", "Province"))
        assert atom.full_path == ("Store", "City", "Province")
        assert atom.target == "Province"

    def test_and_needs_two_operands(self):
        with pytest.raises(ValueError):
            And((TRUE,))

    def test_or_needs_two_operands(self):
        with pytest.raises(ValueError):
            Or((TRUE,))

    def test_exactly_one_needs_an_operand(self):
        with pytest.raises(ValueError):
            ExactlyOne(())

    def test_and_flattens_nested_and(self):
        a, b, c = (PathAtom("A", (x,)) for x in "BCD")
        nested = And((And((a, b)), c))
        assert nested.operands == (a, b, c)

    def test_or_flattens_nested_or(self):
        a, b, c = (PathAtom("A", (x,)) for x in "BCD")
        nested = Or((a, Or((b, c))))
        assert nested.operands == (a, b, c)

    def test_and_does_not_flatten_or(self):
        a, b, c = (PathAtom("A", (x,)) for x in "BCD")
        node = And((Or((a, b)), c))
        assert len(node.operands) == 2


class TestEqualityAndHashing:
    def test_atoms_equal_structurally(self):
        assert PathAtom("A", ("B",)) == PathAtom("A", ("B",))
        assert PathAtom("A", ("B",)) != PathAtom("A", ("C",))

    def test_atoms_hashable(self):
        atoms = {PathAtom("A", ("B",)), PathAtom("A", ("B",)), PathAtom("A", ("C",))}
        assert len(atoms) == 2

    def test_true_false_singletons_compare_equal_to_fresh(self):
        from repro.constraints.ast import FalseConst, TrueConst

        assert TRUE == TrueConst()
        assert FALSE == FalseConst()

    def test_composite_equality(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        assert Implies(a, b) == Implies(a, b)
        assert Implies(a, b) != Implies(b, a)


class TestOperatorSugar:
    def test_and_or_invert(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        assert (a & b) == And((a, b))
        assert (a | b) == Or((a, b))
        assert (~a) == Not(a)

    def test_implies_iff_xor_methods(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        assert a.implies(b) == Implies(a, b)
        assert a.iff(b) == Iff(a, b)
        assert a.xor(b) == Xor(a, b)


class TestRoots:
    def test_single_root(self):
        node = PathAtom("Store", ("City",)) & RollsUpAtom("Store", "Country")
        assert constraint_root(node) == "Store"

    def test_constant_has_no_root(self):
        assert constraint_root(TRUE) is None
        assert constraint_root(Not(FALSE)) is None

    def test_mixed_roots_rejected(self):
        node = PathAtom("Store", ("City",)) & PathAtom("City", ("Country",))
        with pytest.raises(ValueError):
            constraint_root(node)

    def test_equality_and_through_carry_roots(self):
        assert constraint_root(EqualityAtom("Store", "Country", "Canada")) == "Store"
        assert constraint_root(ThroughAtom("Store", "City", "Country")) == "Store"


class TestTraversal:
    def test_atoms_yields_in_order(self):
        a, b, c = (PathAtom("A", (x,)) for x in "BCD")
        node = Implies(a, Or((b, Not(c))))
        assert list(node.atoms()) == [a, b, c]

    def test_walk_counts_nodes(self):
        a, b = PathAtom("A", ("B",)), PathAtom("A", ("C",))
        node = Implies(a, Not(b))
        # Implies, a, Not, b
        assert len(list(walk(node))) == 4

    def test_atoms_of_constants_empty(self):
        assert list(TRUE.atoms()) == []
        assert list(FALSE.atoms()) == []
