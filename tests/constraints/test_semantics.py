"""Definition 4 semantics over the paper's instance: every atom type and
connective, plus violating-member diagnostics."""

from __future__ import annotations

import pytest

from repro.constraints import (
    FALSE,
    TRUE,
    Not,
    parse,
    satisfies,
    satisfies_all,
    satisfies_at,
    violating_members,
)
from repro.errors import ConstraintError


class TestPathAtoms:
    def test_direct_chain_holds(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("Store -> City"))

    def test_long_chain_holds(self, loc_instance):
        node = parse("Store -> City -> Province -> SaleRegion")
        assert satisfies_at(loc_instance, "s1", node)

    def test_chain_requires_direct_edges(self, loc_instance):
        # s1 reaches Country, but not via a direct Store -> Country chain
        # of length 1 through City only: Store -> City -> Country needs a
        # direct City -> Country edge, which Toronto lacks.
        assert not satisfies_at(loc_instance, "s1", parse("Store -> City -> Country"))

    def test_washington_chain(self, loc_instance):
        assert satisfies_at(loc_instance, "s5", parse("Store -> City -> Country"))

    def test_quantifies_over_all_members(self, loc_instance):
        assert satisfies(loc_instance, parse("Store -> City"))
        assert not satisfies(loc_instance, parse("Store -> SaleRegion"))


class TestEqualityAtoms:
    def test_ancestor_name_matches(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("Store.Country = 'Canada'"))

    def test_ancestor_name_mismatch(self, loc_instance):
        assert not satisfies_at(loc_instance, "s1", parse("Store.Country = 'USA'"))

    def test_no_ancestor_in_category(self, loc_instance):
        # s1 is Canadian: no State ancestor at all.
        assert not satisfies_at(loc_instance, "s1", parse("Store.State = 'Texas'"))

    def test_self_name(self, loc_instance):
        assert satisfies_at(loc_instance, "Washington", parse("City = 'Washington'"))
        assert not satisfies_at(loc_instance, "Toronto", parse("City = 'Washington'"))


class TestComposedAtoms:
    def test_rolls_up(self, loc_instance):
        assert satisfies(loc_instance, parse("Store.SaleRegion"))
        assert satisfies(loc_instance, parse("Store.Country"))

    def test_rolls_up_to_own_category_is_true(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("Store.Store"))

    def test_through_positive(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("Store.City.Country"))
        assert satisfies_at(loc_instance, "s1", parse("Store.Province.Country"))

    def test_through_negative(self, loc_instance):
        assert not satisfies_at(loc_instance, "s1", parse("Store.State.Country"))
        # Washington's store reaches Country but not through State.
        assert not satisfies_at(loc_instance, "s5", parse("Store.State.Country"))

    def test_through_degenerate_cases(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("Store.Store.Store"))
        assert not satisfies_at(loc_instance, "s1", parse("Store.City.Store"))
        assert satisfies_at(loc_instance, "s1", parse("Store.Store.Country"))
        assert satisfies_at(loc_instance, "s1", parse("Store.City.City"))


class TestConnectives:
    def test_constants(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", TRUE)
        assert not satisfies_at(loc_instance, "s1", FALSE)

    def test_not(self, loc_instance):
        assert satisfies_at(loc_instance, "s1", parse("not Store -> SaleRegion"))

    def test_and_or(self, loc_instance):
        assert satisfies_at(
            loc_instance, "s1", parse("Store -> City and Store.Country")
        )
        assert satisfies_at(
            loc_instance, "s1", parse("Store -> SaleRegion or Store -> City")
        )

    def test_implies(self, loc_instance):
        node = parse("Store.Country = 'Canada' implies Store.Province.Country")
        assert satisfies(loc_instance, node)

    def test_iff(self, loc_instance):
        node = parse("City = 'Washington' iff City -> Country")
        assert satisfies(loc_instance, node)

    def test_xor(self, loc_instance):
        node = parse("Store.State.Country xor Store.Province.Country")
        # True for Canadian and Mexican/Texan stores, false for Washington.
        assert satisfies_at(loc_instance, "s1", node)
        assert satisfies_at(loc_instance, "s3", node)
        assert not satisfies_at(loc_instance, "s5", node)

    def test_exactly_one(self, loc_instance):
        node = parse("one(Store.State.Country, Store.Province.Country)")
        assert satisfies_at(loc_instance, "s1", node)
        assert not satisfies_at(loc_instance, "s5", node)

    def test_exactly_one_rejects_two_true(self, loc_instance):
        node = parse("one(Store.City, Store.Country)")
        assert not satisfies_at(loc_instance, "s1", node)


class TestSchemaSatisfaction:
    def test_location_satisfies_its_schema(self, loc_instance, loc_schema):
        assert satisfies_all(loc_instance, loc_schema.constraints)

    def test_violating_members_empty_when_satisfied(self, loc_instance):
        assert violating_members(loc_instance, parse("Store -> City")) == []

    def test_violating_members_lists_offenders(self, loc_instance):
        bad = violating_members(loc_instance, parse("Store -> SaleRegion"))
        assert set(bad) == {"s1", "s2", "s3", "s6"}

    def test_vacuous_on_empty_category(self, loc_schema):
        from repro.core import DimensionInstance

        empty = DimensionInstance(loc_schema.hierarchy, {}, [])
        assert satisfies(empty, parse("Store -> SaleRegion"))

    def test_constant_without_root_needs_root_for_violations(self, loc_instance):
        with pytest.raises(ConstraintError):
            violating_members(loc_instance, TRUE)

    def test_unknown_node_type_rejected(self, loc_instance):
        class Alien:
            pass

        with pytest.raises(ConstraintError):
            satisfies_at(loc_instance, "s1", Alien())  # type: ignore[arg-type]
