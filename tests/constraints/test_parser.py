"""Parser unit tests: every grammar production, precedence, and the error
paths."""

from __future__ import annotations

import pytest

from repro.constraints import (
    And,
    EqualityAtom,
    ExactlyOne,
    FALSE,
    Iff,
    Implies,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
    TRUE,
    Xor,
    parse,
    parse_many,
)
from repro.errors import ConstraintSyntaxError


class TestAtoms:
    def test_path_atom_single_step(self):
        assert parse("Store -> City") == PathAtom("Store", ("City",))

    def test_path_atom_long_chain(self):
        node = parse("Store -> City -> Province -> SaleRegion")
        assert node == PathAtom("Store", ("City", "Province", "SaleRegion"))

    def test_rolls_up_atom(self):
        assert parse("Store.SaleRegion") == RollsUpAtom("Store", "SaleRegion")

    def test_through_atom(self):
        assert parse("Store.City.Country") == ThroughAtom("Store", "City", "Country")

    def test_equality_atom_qualified(self):
        assert parse("Store.Country = 'Canada'") == EqualityAtom(
            "Store", "Country", "Canada"
        )

    def test_equality_atom_self(self):
        assert parse("City = 'Washington'") == EqualityAtom(
            "City", "City", "Washington"
        )

    def test_equality_atom_unquoted_constant(self):
        assert parse("City = Washington") == EqualityAtom(
            "City", "City", "Washington"
        )

    def test_equality_atom_numeric_constant(self):
        assert parse("Product.Price = 42") == EqualityAtom("Product", "Price", "42")

    def test_quoted_constant_with_escaped_quote(self):
        assert parse("City = 'O''Brien'") == EqualityAtom("City", "City", "O'Brien")

    def test_quoted_constant_with_spaces(self):
        assert parse("City = 'New York'") == EqualityAtom("City", "City", "New York")

    def test_constants(self):
        assert parse("true") is TRUE
        assert parse("false") is FALSE


class TestConnectives:
    def test_not(self):
        assert parse("not Store -> City") == Not(PathAtom("Store", ("City",)))

    def test_double_not(self):
        assert parse("not not Store -> City") == Not(Not(PathAtom("Store", ("City",))))

    def test_and_is_nary(self):
        node = parse("A -> B and A -> C and A -> D")
        assert isinstance(node, And)
        assert len(node.operands) == 3

    def test_or_is_nary(self):
        node = parse("A -> B or A -> C or A -> D")
        assert isinstance(node, Or)
        assert len(node.operands) == 3

    def test_implies_right_associative(self):
        node = parse("A -> B implies A -> C implies A -> D")
        assert isinstance(node, Implies)
        assert isinstance(node.consequent, Implies)

    def test_iff_left_associative(self):
        node = parse("A -> B iff A -> C iff A -> D")
        assert isinstance(node, Iff)
        assert isinstance(node.left, Iff)

    def test_xor(self):
        node = parse("A -> B xor A -> C")
        assert isinstance(node, Xor)

    def test_exactly_one(self):
        node = parse("one(A -> B, A -> C, A -> D)")
        assert isinstance(node, ExactlyOne)
        assert len(node.operands) == 3

    def test_exactly_one_single_operand(self):
        node = parse("one(A -> B)")
        assert isinstance(node, ExactlyOne)
        assert node.operands == (PathAtom("A", ("B",)),)

    def test_precedence_and_over_or(self):
        node = parse("A -> B or A -> C and A -> D")
        assert isinstance(node, Or)
        assert isinstance(node.operands[1], And)

    def test_precedence_not_binds_tightest(self):
        node = parse("not A -> B and A -> C")
        assert isinstance(node, And)
        assert isinstance(node.operands[0], Not)

    def test_precedence_implies_is_loosest(self):
        node = parse("A -> B and A -> C implies A -> D or A -> E")
        assert isinstance(node, Implies)
        assert isinstance(node.antecedent, And)
        assert isinstance(node.consequent, Or)

    def test_parentheses_override(self):
        node = parse("A -> B and (A -> C or A -> D)")
        assert isinstance(node, And)
        assert isinstance(node.operands[1], Or)

    def test_paper_constraint_c(self):
        node = parse("City = 'Washington' iff City -> Country")
        assert node == Iff(
            EqualityAtom("City", "City", "Washington"),
            PathAtom("City", ("Country",)),
        )

    def test_paper_constraint_d(self):
        node = parse("City = 'Washington' implies City.Country = 'USA'")
        assert node == Implies(
            EqualityAtom("City", "City", "Washington"),
            EqualityAtom("City", "Country", "USA"),
        )


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "Store ->",
            "-> City",
            "Store -> City and",
            "one()",
            "one(A -> B",
            "(A -> B",
            "A -> B)",
            "Store .",
            "Store = ",
            "Store.City.Country = 'x'",
            "Store @@ City",
            "not",
            "A -> B implies",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(ConstraintSyntaxError):
            parse(text)

    def test_keyword_not_a_category(self):
        with pytest.raises(ConstraintSyntaxError):
            parse("one -> City")

    def test_keyword_not_a_path_step(self):
        with pytest.raises(ConstraintSyntaxError):
            parse("Store -> and")

    def test_error_reports_position(self):
        with pytest.raises(ConstraintSyntaxError) as err:
            parse("Store -> City @@")
        assert "position" in str(err.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ConstraintSyntaxError):
            parse("Store -> City City")


class TestParseMany:
    def test_one_per_line(self):
        nodes = parse_many("Store -> City\nStore.SaleRegion\n")
        assert len(nodes) == 2

    def test_skips_blank_lines_and_comments(self):
        nodes = parse_many(
            """
            # the into constraint
            Store -> City

            Store.SaleRegion  # composed
            """
        )
        assert len(nodes) == 2

    def test_empty_text(self):
        assert parse_many("") == []
