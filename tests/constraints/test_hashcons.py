"""Hash-consing of constraint ASTs: interning, cached hashes, and the
identity fast paths the satisfiability kernel's memo tables rely on."""

from __future__ import annotations

import gc

from repro.constraints import parse
from repro.constraints.ast import (
    FALSE,
    TRUE,
    And,
    Not,
    RollsUpAtom,
    hash_cons,
    intern_table_size,
)
from repro.constraints.simplify import clear_simplify_memo, simplify


class TestInterning:
    def test_equal_constructions_intern_to_one_object(self):
        left = hash_cons(parse("Store -> City and City -> Country"))
        right = hash_cons(parse("Store -> City and City -> Country"))
        assert left is right

    def test_subterms_are_shared(self):
        a = hash_cons(parse("not (Store -> City)"))
        b = hash_cons(parse("Store -> City or Store -> SaleRegion"))
        assert a.child is b.operands[0]

    def test_constants_map_to_singletons(self):
        assert hash_cons(parse("Store -> City or true")).operands[1] is TRUE
        assert hash_cons(parse("Store -> City and false")).operands[1] is FALSE

    def test_different_constraints_stay_different(self):
        assert hash_cons(parse("Store -> City")) is not hash_cons(
            parse("Store -> SaleRegion")
        )
        assert hash_cons(parse("Store -> City")) != parse("Store -> SaleRegion")

    def test_interned_nodes_equal_plain_nodes(self):
        interned = hash_cons(parse("Store -> City and City -> Country"))
        plain = parse("Store -> City and City -> Country")
        assert interned == plain
        assert hash(interned) == hash(plain)

    def test_table_is_weak(self):
        gc.collect()
        before = intern_table_size()
        node = hash_cons(
            And((RollsUpAtom("Ephemeral1", "Ephemeral2"), TRUE))
        )
        assert intern_table_size() > before
        del node
        gc.collect()
        assert intern_table_size() <= before + 1  # TRUE may linger


class TestCachedHash:
    def test_hash_is_cached_on_first_use(self):
        node = parse("Store -> City and not City -> Country")
        assert not hasattr(node, "_hash_cache") or node._hash_cache is None
        first = hash(node)
        assert node._hash_cache == first
        assert hash(node) == first

    def test_equality_identity_fast_path(self):
        node = hash_cons(parse("Store -> City"))
        assert node == node

    def test_unequal_hash_early_exit(self):
        a = parse("Store -> City")
        b = Not(parse("Store -> City"))
        hash(a), hash(b)
        assert a != b


class TestSimplifyMemo:
    def test_memo_returns_identical_result(self):
        clear_simplify_memo()
        node = hash_cons(parse("(Store -> City and true) or false"))
        first = simplify(node)
        second = simplify(node)
        assert first is second
        assert first == parse("Store -> City")

    def test_memo_survives_equal_reconstruction(self):
        clear_simplify_memo()
        first = simplify(hash_cons(parse("not not Store -> City")))
        second = simplify(hash_cons(parse("not not Store -> City")))
        assert first is second

    def test_clear_resets(self):
        node = hash_cons(parse("Store -> City and true"))
        simplify(node)
        clear_simplify_memo()
        assert simplify(node) == parse("Store -> City")
