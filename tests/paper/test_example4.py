"""Example 4: cyclic hierarchy schemas.

"Suppose that some cities have ancestors in SaleDistrict, while some sale
districts have ancestors in City. ... in order to model this dimension,
we need the cycle SaleDistrict -> City -> SaleDistrict in the hierarchy
schema."

The cycle lives in ``G`` only: instances stay stratified (C6), and the
subhierarchies DIMSAT explores are acyclic - the two orientations simply
become two different frozen dimensions.
"""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_frozen_dimensions
from repro.constraints import satisfies_all
from repro.core import (
    ALL,
    DimensionInstance,
    DimensionSchema,
    HierarchySchema,
    dimsat,
    enumerate_frozen_dimensions,
    is_summarizable_in_schema,
)


@pytest.fixture(scope="module")
def cyclic_hierarchy():
    return HierarchySchema(
        ["Store", "SaleDistrict", "City"],
        [
            ("Store", "City"),
            ("Store", "SaleDistrict"),
            ("SaleDistrict", "City"),
            ("City", "SaleDistrict"),
            ("City", ALL),
            ("SaleDistrict", ALL),
        ],
    )


@pytest.fixture(scope="module")
def cyclic_schema(cyclic_hierarchy):
    return DimensionSchema(
        cyclic_hierarchy,
        [
            "one(Store -> City, Store -> SaleDistrict)",
        ],
    )


@pytest.fixture()
def cyclic_instance(cyclic_hierarchy):
    """Both orientations at once: c1 sits under d1, d2 sits under c2."""
    members = {
        "s1": "Store",
        "s2": "Store",
        "c1": "City",
        "c2": "City",
        "d1": "SaleDistrict",
        "d2": "SaleDistrict",
    }
    edges = [
        ("s1", "c1"),
        ("c1", "d1"),   # a city inside a sale district
        ("s2", "d2"),
        ("d2", "c2"),   # a sale district inside a city
    ]
    return DimensionInstance(cyclic_hierarchy, members, edges)


class TestTheCycleItself:
    def test_schema_is_cyclic_but_legal(self, cyclic_hierarchy):
        assert cyclic_hierarchy.is_cyclic()
        assert cyclic_hierarchy.reaches("City", "SaleDistrict")
        assert cyclic_hierarchy.reaches("SaleDistrict", "City")

    def test_instance_mixes_both_orientations(self, cyclic_instance):
        assert cyclic_instance.is_valid()
        assert cyclic_instance.rolls_up_to_category("c1", "SaleDistrict")
        assert cyclic_instance.rolls_up_to_category("d2", "City")

    def test_member_level_stays_acyclic(self, cyclic_instance):
        # (C6): no member is its own ancestor even though G has a cycle.
        for member in cyclic_instance.all_members():
            assert member not in cyclic_instance.ancestors_of(member)


class TestReasoningOverTheCycle:
    def test_all_categories_satisfiable(self, cyclic_schema):
        for category in cyclic_schema.hierarchy.categories:
            assert dimsat(cyclic_schema, category).satisfiable, category

    def test_frozen_dimensions_cover_both_orientations(self, cyclic_schema):
        frozen = enumerate_frozen_dimensions(cyclic_schema, "Store")
        edges = {f.subhierarchy.edges for f in frozen}
        assert frozenset(
            {("Store", "City"), ("City", "SaleDistrict"), ("SaleDistrict", ALL)}
        ) in edges
        assert frozenset(
            {("Store", "SaleDistrict"), ("SaleDistrict", "City"), ("City", ALL)}
        ) in edges
        # Every explored subhierarchy is acyclic despite the cyclic G.
        for f in frozen:
            assert f.subhierarchy.is_acyclic()

    def test_agrees_with_brute_force(self, cyclic_schema):
        fast = {
            f.subhierarchy
            for f in enumerate_frozen_dimensions(cyclic_schema, "Store")
        }
        brute = {
            f.subhierarchy
            for f in brute_force_frozen_dimensions(cyclic_schema, "Store")
        }
        assert fast == brute

    def test_witnesses_conform(self, cyclic_schema):
        for frozen in enumerate_frozen_dimensions(cyclic_schema, "Store"):
            instance = frozen.to_instance(cyclic_schema)
            assert instance.is_valid()
            assert satisfies_all(instance, cyclic_schema.constraints)

    def test_neither_direction_is_summarizable_alone(self, cyclic_schema):
        # Stores may sit under City-first chains or SaleDistrict-first
        # chains, so neither mid category can derive the other.
        assert not is_summarizable_in_schema(
            cyclic_schema, "SaleDistrict", ["City"]
        )
        assert not is_summarizable_in_schema(cyclic_schema, "City", ["SaleDistrict"])
        # The base category itself always works (trivial rewriting).
        assert is_summarizable_in_schema(cyclic_schema, "City", ["Store"])

    def test_pinning_one_orientation(self, cyclic_schema):
        oriented = cyclic_schema.with_constraints(
            ["Store -> City", "City -> SaleDistrict"]
        )
        frozen = enumerate_frozen_dimensions(oriented, "Store")
        assert len(frozen) == 1
        assert is_summarizable_in_schema(oriented, "SaleDistrict", ["City"])
