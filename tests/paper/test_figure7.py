"""E5 - Figure 7 / Example 13: the DIMSAT search on locationSch.

The figure shows the successive states of the search variable g until the
first successful CHECK.  The paper's figure depends on its (unspecified)
top-category choice order; with our deterministic 'sorted' strategy we
verify the structural properties the figure illustrates: the search grows
subhierarchies edge by edge, never builds a cycle or shortcut, always
honours the into constraint Store -> City, and the first successful CHECK
returns one of the four Figure 4 structures.
"""

from __future__ import annotations

from repro.core import ALL, DimsatOptions, Subhierarchy, dimsat
from repro.generators.location import paper_frozen_structures


def traced_run(loc_schema):
    options = DimsatOptions(keep_trace=True)
    return dimsat(loc_schema, "Store", options)


class TestFigure7Trace:
    def test_search_starts_from_bare_root(self, loc_schema):
        result = traced_run(loc_schema)
        first = result.trace[0]
        assert first.kind == "expand"
        assert first.edges == ()
        assert first.top == ("Store",)

    def test_every_expansion_honours_into_constraint(self, loc_schema):
        """Lines (14)-(17): every expansion of Store includes City."""
        result = traced_run(loc_schema)
        for entry in result.trace:
            if entry.kind == "expand" and entry.category == "Store" and entry.added:
                assert "City" in entry.added

    def test_no_intermediate_state_has_cycle_or_shortcut(self, loc_schema):
        result = traced_run(loc_schema)
        for entry in result.trace:
            sub = Subhierarchy(
                "Store",
                frozenset(
                    {c for edge in entry.edges for c in edge} | {"Store"}
                ),
                frozenset(entry.edges),
            )
            assert sub.is_acyclic()
            assert sub.shortcut_edges() == frozenset()

    def test_check_called_only_on_complete_subhierarchies(self, loc_schema):
        result = traced_run(loc_schema)
        for index, entry in enumerate(result.trace):
            if entry.kind == "check":
                previous = result.trace[index - 1]
                assert previous.top == (ALL,)

    def test_first_success_is_a_figure4_structure(self, loc_schema):
        result = traced_run(loc_schema)
        assert result.satisfiable
        last = result.trace[-1]
        assert last.kind == "check" and last.succeeded
        assert result.witness.subhierarchy in set(
            paper_frozen_structures().values()
        )

    def test_search_stops_at_first_success(self, loc_schema):
        result = traced_run(loc_schema)
        successes = [
            e for e in result.trace if e.kind == "check" and e.succeeded
        ]
        assert len(successes) == 1
        assert result.trace[-1] is successes[0]


class TestFigure7Effort:
    def test_expand_calls_bounded(self, loc_schema):
        """The figure shows a handful of states - the pruned search must
        stay far below the raw subhierarchy space (2^10 edge subsets)."""
        result = traced_run(loc_schema)
        assert result.stats.expand_calls <= 20

    def test_exhaustive_search_visits_all_four_structures(self, loc_schema):
        from repro.core import enumerate_frozen_dimensions

        found = enumerate_frozen_dimensions(loc_schema, "Store")
        assert {f.subhierarchy for f in found} == set(
            paper_frozen_structures().values()
        )
