"""E7 - Example 11 and Section 4: category satisfiability."""

from __future__ import annotations

from repro.core import (
    ALL,
    dimsat,
    is_category_satisfiable,
    prune_unsatisfiable,
    unsatisfiable_categories,
)


class TestExample11:
    def test_saleregion_becomes_unsatisfiable(self, loc_schema):
        """Adding `not SaleRegion -> Country` kills SaleRegion because
        condition (C7) requires SaleRegion_Country (Country is its only
        parent category)."""
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        assert is_category_satisfiable(loc_schema, "SaleRegion")
        assert not is_category_satisfiable(extended, "SaleRegion")

    def test_unsatisfiability_cascades_to_store(self, loc_schema):
        """Constraint (b) forces every store through SaleRegion, so Store
        dies with it; Province too (its only parent is SaleRegion)."""
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        bad = unsatisfiable_categories(extended)
        assert set(bad) == {"SaleRegion", "Store", "Province"}

    def test_dropping_unsatisfiable_categories(self, loc_schema):
        """Section 4: unsatisfiable categories can be dropped, providing a
        cleaner representation of the data."""
        extended = loc_schema.with_constraints(["not SaleRegion -> Country"])
        pruned, dropped = prune_unsatisfiable(extended)
        assert set(dropped) == {"SaleRegion", "Store", "Province"}
        assert unsatisfiable_categories(pruned) == []


class TestSection4:
    def test_proposition1_every_schema_satisfiable(self, loc_schema):
        """Proposition 1: I(ds) is never empty - All is always
        satisfiable, even under contradictory constraints elsewhere."""
        hostile = loc_schema.with_constraints(
            ["not Store -> City and Store -> City"]
        )
        assert dimsat(hostile, ALL).satisfiable

    def test_all_never_reported_unsatisfiable(self, loc_schema):
        hostile = loc_schema.with_constraints(["not Store -> City"])
        assert ALL not in unsatisfiable_categories(hostile)
