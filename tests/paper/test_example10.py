"""E6 - Examples 2, 7, 10 and Theorem 1: summarizability on location."""

from __future__ import annotations

from repro.constraints import parse, satisfies
from repro.core import (
    is_implied,
    is_summarizable_in_instance,
    is_summarizable_in_schema,
)


class TestExample2:
    def test_country_summarizable_from_city(self, loc_instance):
        """Example 2(i): all the stores roll up to Country passing through
        City, so Country is summarizable from {City}."""
        assert is_summarizable_in_instance(loc_instance, "Country", ["City"])

    def test_not_inferable_from_hierarchy_alone(self, loc_schema):
        """Example 2: the bare hierarchy schema admits stores that bypass
        City; only the constraints rule them out."""
        from repro.core import DimensionSchema

        bare = DimensionSchema(loc_schema.hierarchy, [])
        assert not is_summarizable_in_schema(bare, "Country", ["City"])
        assert is_summarizable_in_schema(loc_schema, "Country", ["City"])


class TestExample7:
    def test_store_salesregion_composed_atom(self, loc_instance, loc_schema):
        """Example 7: Store.SaleRegion asserts all stores roll up to
        SaleRegion; it holds in the instance and is implied by the schema."""
        node = parse("Store.SaleRegion")
        assert satisfies(loc_instance, node)
        assert is_implied(loc_schema, node)


class TestExample10:
    def test_positive_direction(self, loc_instance):
        """location |= Store.Country implies Store.City.Country."""
        node = parse("Store.Country implies Store.City.Country")
        assert satisfies(loc_instance, node)
        assert is_summarizable_in_instance(loc_instance, "Country", ["City"])

    def test_negative_direction(self, loc_instance):
        """location does not satisfy
        Store.Country implies (Store.State.Country xor Store.Province.Country),
        because the Washington store bypasses both."""
        node = parse(
            "Store.Country implies "
            "(Store.State.Country xor Store.Province.Country)"
        )
        assert not satisfies(loc_instance, node)
        assert not is_summarizable_in_instance(
            loc_instance, "Country", ["State", "Province"]
        )

    def test_washington_is_the_culprit(self, loc_instance):
        from repro.constraints import violating_members

        node = parse(
            "Store.Country implies "
            "(Store.State.Country xor Store.Province.Country)"
        )
        assert violating_members(loc_instance, node) == ["s5"]

    def test_schema_level_agrees(self, loc_schema):
        assert is_summarizable_in_schema(loc_schema, "Country", ["City"])
        assert not is_summarizable_in_schema(
            loc_schema, "Country", ["State", "Province"]
        )
