"""E4 - Figure 5 / Example 12: SIGMA(locationSch, Store) and the circle
operator.

The left column of Figure 5 is the whole constraint set (every root is
reachable from Store); the right column is its reduction over the
subhierarchy g of Example 12, reproduced here line by line.
"""

from __future__ import annotations

from repro.constraints import unparse
from repro.core import circle
from repro.generators.location import figure5_subhierarchy


class TestFigure5Left:
    def test_sigma_store_is_whole_sigma(self, loc_schema):
        relevant = loc_schema.relevant_constraints("Store")
        assert relevant == loc_schema.constraints

    def test_left_column_text(self, loc_schema):
        rendered = [unparse(node) for node in loc_schema.constraints]
        assert rendered == [
            "Store -> City",                                          # (a)
            "Store.SaleRegion",                                       # (b)
            "City = 'Washington' iff City -> Country",                # (c)
            "City = 'Washington' implies City.Country = 'USA'",       # (d)
            "State.Country = 'Mexico' or State.Country = 'USA'",      # (e)
            "State.Country = 'Mexico' iff State -> SaleRegion",       # (f)
            "Province.Country = 'Canada'",                            # (g)
        ]


class TestFigure5Right:
    def test_right_column_text(self, loc_schema):
        g = figure5_subhierarchy()
        reduced = circle(loc_schema.constraints, g)
        rendered = [unparse(node) for node in reduced]
        assert rendered == [
            "true",                                                   # (a)
            "true",                                                   # (b)
            "City = 'Washington' iff false",                          # (c)
            "City = 'Washington' implies City.Country = 'USA'",       # (d)
            "State.Country = 'Mexico' or State.Country = 'USA'",      # (e)
            "State.Country = 'Mexico' iff false",                     # (f)
            "Province.Country = 'Canada'",                            # (g)
        ]

    def test_reduced_set_mentions_only_equality_atoms(self, loc_schema):
        from repro.constraints import EqualityAtom

        g = figure5_subhierarchy()
        for node in circle(loc_schema.constraints, g):
            for atom in node.atoms():
                assert isinstance(atom, EqualityAtom)

    def test_example12_subhierarchy_induces_no_frozen_dimension(self, loc_schema):
        """The g of Example 12 mixes State and Province: constraints (e)/(f)
        force Country = USA while (g) forces Country = Canada, so CHECK
        fails - this subhierarchy appears in the Figure 7 search but yields
        nothing."""
        from repro.core import induced_frozen_dimensions

        g = figure5_subhierarchy()
        assert list(induced_frozen_dimensions(loc_schema, "Store", g)) == []
