"""E3 - Figure 4: the frozen dimensions of locationSch with root Store.

Example 9: the set illustrates the different structures of the stores in
Mexico, USA, and Canada (the USA contributing two structures: the regular
one and the Washington exception).
"""

from __future__ import annotations

from repro.constraints import satisfies_all
from repro.core import NK, enumerate_frozen_dimensions
from repro.generators.location import (
    expected_frozen_names,
    paper_frozen_structures,
)


def frozen_by_structure(loc_schema):
    found = enumerate_frozen_dimensions(loc_schema, "Store")
    structures = paper_frozen_structures()
    by_name = {}
    for name, sub in structures.items():
        for frozen in found:
            if frozen.subhierarchy == sub:
                by_name[name] = frozen
    return found, by_name


class TestFigure4:
    def test_exactly_four_frozen_dimensions(self, loc_schema):
        found, by_name = frozen_by_structure(loc_schema)
        assert len(found) == 4
        assert set(by_name) == {"Canada", "Mexico", "USA", "USA-Washington"}

    def test_pinned_names_match_figure(self, loc_schema):
        _found, by_name = frozen_by_structure(loc_schema)
        for name, expected in expected_frozen_names().items():
            frozen = by_name[name]
            for category, constant in expected.items():
                assert frozen.name_of(category) == constant, (name, category)

    def test_unpinned_names_are_nk(self, loc_schema):
        """Figure 4 shows names only where Const pins them (Example 9:
        'categories City and Country')."""
        _found, by_name = frozen_by_structure(loc_schema)
        for name, frozen in by_name.items():
            expected = expected_frozen_names()[name]
            for category in frozen.categories:
                if category in expected or category == "All":
                    continue
                assert frozen.name_of(category) == NK, (name, category)

    def test_each_is_a_minimal_homogeneous_instance(self, loc_schema):
        """Definition 5: materialized frozen dimensions are valid
        one-member-per-category instances over the schema."""
        found, _ = frozen_by_structure(loc_schema)
        for frozen in found:
            instance = frozen.to_instance(loc_schema)
            assert instance.is_valid()
            assert satisfies_all(instance, loc_schema.constraints)
            for category in frozen.categories:
                assert len(instance.members(category)) == 1

    def test_root_member_below_everything(self, loc_schema):
        """Definition 5(c): phi(Store) reaches every other member."""
        from repro.core import phi

        found, _ = frozen_by_structure(loc_schema)
        for frozen in found:
            instance = frozen.to_instance(loc_schema)
            root = phi("Store")
            others = set(instance.all_members()) - {root}
            assert instance.ancestors_of(root) == others

    def test_country_structures_cover_prose(self, loc_schema):
        """Example 9: Canadian stores via Province, Mexican via State and
        SaleRegion, US stores via State or straight to Country."""
        _found, by_name = frozen_by_structure(loc_schema)
        canada = by_name["Canada"].subhierarchy
        assert ("City", "Province") in canada.edges
        mexico = by_name["Mexico"].subhierarchy
        assert ("State", "SaleRegion") in mexico.edges
        usa = by_name["USA"].subhierarchy
        assert ("State", "Country") in usa.edges
        washington = by_name["USA-Washington"].subhierarchy
        assert ("City", "Country") in washington.edges
