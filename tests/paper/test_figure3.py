"""E2 - Figure 3 / Example 8: the dimension schema locationSch.

The schema models the location dimension: the concrete instance is a
member of I(locationSch), the equality atoms differentiate the country
structures, and the Washington shortcut is expressible.
"""

from __future__ import annotations

from repro.constraints import EqualityAtom, satisfies, satisfies_all
from repro.core import DimensionInstance


class TestLocationSchModelsLocation:
    def test_instance_is_over_the_schema(self, loc_schema, loc_instance):
        """`location` is a dimension instance over locationSch."""
        assert loc_instance.hierarchy == loc_schema.hierarchy
        assert satisfies_all(loc_instance, loc_schema.constraints)

    def test_equality_atoms_differentiate_countries(self, loc_schema):
        """Example 8: locationSch uses equality atoms to differentiate the
        structure of the stores in each country."""
        constants = {
            atom.constant
            for node in loc_schema.constraints
            for atom in node.atoms()
            if isinstance(atom, EqualityAtom)
        }
        assert constants == {"Washington", "Canada", "Mexico", "USA"}

    def test_washington_shortcut_modelled(self, loc_schema, loc_instance):
        """Example 8: locationSch models the shortcut caused by
        Washington - only Washington may use the City -> Country edge."""
        from repro.constraints import parse

        node = parse("City -> Country implies City = 'Washington'")
        # Implied by (c) of the schema.
        from repro.core import is_implied

        assert is_implied(loc_schema, node)
        assert satisfies(loc_instance, node)


class TestSchemaRejectsBadInstances:
    def _mutate(self, loc_instance, drop, add):
        members = {
            m: loc_instance.category_of(m) for m in loc_instance.all_members()
        }
        edges = [e for e in loc_instance.member_edges() if e not in drop]
        edges.extend(add)
        return DimensionInstance(
            loc_instance.hierarchy, members, edges, validate=False
        )

    def test_orphaned_store_violates_a(self, loc_schema, loc_instance):
        broken = self._mutate(
            loc_instance, drop={("s1", "Toronto")}, add=[("s1", "SR-North")]
        )
        assert broken.is_valid()
        assert not satisfies_all(broken, loc_schema.constraints)

    def test_non_washington_shortcut_violates_c(self, loc_schema, loc_instance):
        broken = self._mutate(
            loc_instance,
            drop={("Vancouver", "BritishColumbia")},
            add=[("Vancouver", "Canada")],
        )
        assert broken.is_valid()
        # (c) City = 'Washington' iff City -> Country now fails at Vancouver.
        assert not satisfies_all(broken, loc_schema.constraints)

    def test_province_outside_canada_violates_g(self, loc_schema, loc_instance):
        # Rewire British Columbia into the Mexican sale region.
        broken = self._mutate(
            loc_instance,
            drop={("BritishColumbia", "SR-North"), ("s6", "Vancouver")},
            add=[("BritishColumbia", "SR-South"), ("s6", "Vancouver")],
        )
        assert broken.is_valid()
        assert not satisfies_all(broken, loc_schema.constraints)
