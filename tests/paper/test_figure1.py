"""E1 - Figure 1: the `location` dimension.

The hierarchy schema (A) and the child/parent relation (B), checked
against every statement Section 1.1 makes about them.
"""

from __future__ import annotations

from repro.core import ALL


class TestHierarchySchemaFigure1A:
    def test_edges(self, loc_hierarchy):
        assert loc_hierarchy.edges == frozenset(
            {
                ("Store", "City"),
                ("Store", "SaleRegion"),
                ("City", "State"),
                ("City", "Province"),
                ("City", "Country"),
                ("State", "SaleRegion"),
                ("State", "Country"),
                ("Province", "SaleRegion"),
                ("SaleRegion", "Country"),
                ("Country", ALL),
            }
        )

    def test_example3_shortcut(self, loc_hierarchy):
        """Example 3: the categories City and Country form a shortcut."""
        assert ("City", "Country") in loc_hierarchy.shortcuts()

    def test_example2_bypass_exists_in_schema(self, loc_hierarchy):
        """Example 2: the hierarchy schema alone admits stores that reach
        Country through SaleRegion without passing through City."""
        bypasses = [
            path
            for path in loc_hierarchy.simple_paths("Store", "Country")
            if "City" not in path
        ]
        assert bypasses == [("Store", "SaleRegion", "Country")]


class TestInstanceFigure1B:
    def test_satisfies_all_conditions(self, loc_instance):
        assert loc_instance.violations() == []

    def test_rollup_of_toronto(self, loc_instance):
        """Section 1: Toronto rolls up to Ontario and, transitively, to
        Canada."""
        assert loc_instance.leq("Toronto", "Ontario")
        assert loc_instance.leq("Toronto", "Canada")

    def test_stores_in_three_countries(self, loc_instance):
        countries = {
            loc_instance.ancestor_in(store, "Country")
            for store in loc_instance.members("Store")
        }
        assert countries == {"Canada", "Mexico", "USA"}

    def test_heterogeneity_of_store_category(self, loc_instance):
        """Stores disagree on ancestor categories: the dimension is
        heterogeneous."""
        signatures = {
            frozenset(
                loc_instance.category_of(a)
                for a in loc_instance.ancestors_of(store)
            )
            for store in loc_instance.members("Store")
        }
        assert len(signatures) > 1

    def test_rollup_mappings_are_functions(self, loc_instance):
        """Condition (C2) makes every rollup mapping single valued."""
        hierarchy = loc_instance.hierarchy
        for lower in hierarchy.categories:
            for upper in hierarchy.categories:
                if lower == upper:
                    continue
                mapping = loc_instance.rollup_mapping(lower, upper)
                assert len(mapping) == len(set(mapping))
