"""The paper's theorems and propositions as executable checks.

* Theorem 2: implication reduces to category satisfiability.
* Theorem 3: satisfiability iff a frozen dimension exists.
* Proposition 2: a subhierarchy induces a frozen dimension iff it is
  acyclic, shortcut free, and admits a satisfying c-assignment.
* Theorem 4 (NP-hardness direction): the SAT reduction is exact.
"""

from __future__ import annotations

import pytest

from repro.constraints import Not, parse, satisfies, satisfies_all
from repro.core import (
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    induced_frozen_dimensions,
    is_category_satisfiable,
)
from repro.baselines import brute_force_frozen_dimensions, candidate_subhierarchies
from repro.generators.location import location_schema
from repro.generators.sat_encoding import ROOT, encode, random_3cnf


class TestTheorem2:
    @pytest.mark.parametrize(
        "text",
        [
            "Store -> City",
            "Store -> SaleRegion",
            "Store.Country implies Store.City.Country",
            "Store.Province.Country",
            "City = 'Washington' implies City.Country = 'USA'",
            "State -> SaleRegion",
        ],
    )
    def test_implication_iff_unsat_of_negation(self, loc_schema, text):
        node = parse(text)
        from repro.constraints import constraint_root

        root = constraint_root(node)
        extended = loc_schema.with_constraints([Not(node)])
        assert implies(loc_schema, node).implied == (
            not is_category_satisfiable(extended, root)
        )


class TestTheorem3:
    def test_satisfiable_iff_frozen_dimension_exists(self, loc_schema):
        for category in sorted(loc_schema.hierarchy.categories):
            frozen = enumerate_frozen_dimensions(loc_schema, category)
            assert bool(frozen) == is_category_satisfiable(loc_schema, category)

    def test_frozen_dimensions_are_instances_over_ds(self, loc_schema):
        """Every enumerated frozen dimension materializes to an element of
        I(locationSch)."""
        for frozen in enumerate_frozen_dimensions(loc_schema, "Store"):
            instance = frozen.to_instance(loc_schema)
            assert instance.is_valid()
            assert satisfies_all(instance, loc_schema.constraints)


class TestProposition2:
    def test_induction_matches_first_principles(self, loc_schema):
        """For every candidate subhierarchy, the circle-operator test of
        Proposition 2 agrees with brute-force materialization."""
        brute = {
            f.subhierarchy
            for f in brute_force_frozen_dimensions(loc_schema, "Store")
        }
        for sub in candidate_subhierarchies(loc_schema, "Store"):
            induced = bool(
                list(induced_frozen_dimensions(loc_schema, "Store", sub))
            )
            assert induced == (sub in brute), str(sub)


class TestTheorem4:
    @pytest.mark.parametrize("n_vars,n_clauses", [(3, 6), (4, 10), (5, 15)])
    def test_sat_reduction_is_exact(self, n_vars, n_clauses):
        for seed in range(5):
            cnf = random_3cnf(n_vars, n_clauses, seed=seed)
            assert (
                is_category_satisfiable(encode(cnf), ROOT)
                == cnf.brute_force_satisfiable()
            )


class TestComplexityShape:
    def test_unsat_needs_exhaustion(self):
        """A negative answer explores more than a positive one (the coNP
        side of implication): forcing unsatisfiability multiplies the
        expand count."""
        schema = location_schema()
        positive = dimsat(schema, "Store").stats.expand_calls
        negative = dimsat(
            schema.with_constraints(["not Store.SaleRegion"]), "Store"
        ).stats.expand_calls
        assert negative >= positive
