"""End-to-end integration tests: whole workflows across packages.

Each test plays a realistic session - design, load, audit, query, evolve -
crossing the constraint language, the reasoning engine, the OLAP layer,
and the serialization code in one flow.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    DimensionSchema,
    HierarchySchema,
    dimsat,
    enumerate_frozen_dimensions,
    implies,
    is_summarizable_in_schema,
)
from repro.constraints import satisfies_all
from repro.core.builder import InstanceBuilder
from repro.core.implication import prune_unsatisfiable, unsatisfiable_categories
from repro.generators.location import location_instance, location_schema
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.io import (
    facts_from_csv,
    instance_from_json,
    instance_to_json,
    schema_from_json,
    schema_to_json,
)
from repro.olap import SUM, AggregateNavigator, OlapEngine, cube_view, views_equal


class TestDesignLoadQueryWorkflow:
    """A designer builds a schema, loads data, and serves queries."""

    def test_full_lifecycle(self, tmp_path):
        # 1. Design: a courier dimension - parcels route via air or ground.
        hierarchy = HierarchySchema(
            ["Parcel", "AirHub", "GroundHub", "Region"],
            [
                ("Parcel", "AirHub"),
                ("Parcel", "GroundHub"),
                ("AirHub", "Region"),
                ("GroundHub", "Region"),
                ("Region", "All"),
            ],
        )
        schema = DimensionSchema(
            hierarchy,
            [
                "one(Parcel -> AirHub, Parcel -> GroundHub)",
                "AirHub -> Region",
                "GroundHub -> Region",
            ],
        )

        # 2. Audit at design time: everything satisfiable, two shapes.
        assert unsatisfiable_categories(schema) == []
        shapes = enumerate_frozen_dimensions(schema, "Parcel")
        assert len(shapes) == 2

        # 3. Region is only derivable from both hub kinds together.
        assert is_summarizable_in_schema(schema, "Region", ["AirHub", "GroundHub"])
        assert not is_summarizable_in_schema(schema, "Region", ["AirHub"])

        # 4. Persist and reload the schema.
        path = tmp_path / "courier.json"
        path.write_text(schema_to_json(schema))
        schema = schema_from_json(path.read_text())

        # 5. Load data with the builder.
        builder = InstanceBuilder(schema.hierarchy)
        builder.members("Region", "north", "south")
        builder.member("hub-a", "AirHub").link("hub-a", "north")
        builder.member("hub-g", "GroundHub").link("hub-g", "south")
        for index in range(6):
            parcel = f"p{index}"
            builder.member(parcel, "Parcel")
            builder.link(parcel, "hub-a" if index % 2 else "hub-g")
        instance = builder.freeze()
        assert satisfies_all(instance, schema.constraints)

        # 6. Serve queries through the engine.
        rows = [(f"p{i}", {"weight": float(i + 1)}) for i in range(6)]
        engine = OlapEngine(schema, instance, rows)
        assert engine.check_integrity() == []
        engine.materialize("AirHub", "SUM", "weight")
        engine.materialize("GroundHub", "SUM", "weight")
        view, plan = engine.query("Region", "SUM", "weight")
        assert plan.kind == "rewritten"
        assert set(plan.sources) == {"AirHub", "GroundHub"}
        assert view.cells["north"] == 2.0 + 4.0 + 6.0
        assert view.cells["south"] == 1.0 + 3.0 + 5.0


class TestEvolutionWorkflow:
    """Schema evolution: a new constraint arrives; audits catch fallout."""

    def test_constraint_addition_and_repair(self):
        schema = location_schema()
        # Policy change: sale regions report to headquarters, not countries.
        proposed = schema.with_constraints(["not SaleRegion -> Country"])
        dead = unsatisfiable_categories(proposed)
        assert set(dead) == {"SaleRegion", "Store", "Province"}
        # The repair tooling produces a consistent (if much smaller) schema.
        pruned, dropped = prune_unsatisfiable(proposed)
        assert set(dropped) == set(dead)
        assert unsatisfiable_categories(pruned) == []
        # The original data no longer fits the pruned hierarchy at all:
        # its Store category is gone.
        assert not pruned.hierarchy.has_category("Store")

    def test_counterexample_guides_the_designer(self):
        schema = location_schema()
        claim = "Store.Country implies Store.SaleRegion.Country"
        result = implies(schema, claim)
        # Believable but false: a US store may reach Country while its sale
        # region path runs in parallel... check what the witness says.
        if not result.implied:
            witness = result.counterexample.to_instance(schema)
            assert witness.is_valid()
        # Either way the engine must be decisive.
        assert result.implied in (True, False)


class TestSerializationRoundTripWorkflow:
    def test_instance_csv_json_query_pipeline(self, tmp_path):
        schema = location_schema()
        instance = location_instance()

        # JSON round trip of the instance.
        blob = instance_to_json(instance)
        restored = instance_from_json(blob)
        assert satisfies_all(restored, schema.constraints)

        # CSV facts against the restored instance.
        facts = facts_from_csv(
            restored,
            "member,sales\ns1,10\ns3,4\ns5,2\n",
        )
        direct = cube_view(facts, "Country", SUM, "sales")
        assert direct.cells == {"Canada": 10.0, "Mexico": 4.0, "USA": 2.0}

        # Navigator over the restored data agrees with direct computation.
        navigator = AggregateNavigator(facts, schema=schema)
        navigator.materialize("City", SUM, "sales")
        view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "rewritten"
        assert views_equal(view, direct)


class TestScaleWorkflow:
    def test_generated_warehouse_round(self):
        schema = location_schema()
        instance = instance_from_frozen(schema, "Store", copies=10, fan_out=3)
        facts = random_fact_table(instance, 2_000, seed=5)
        navigator = AggregateNavigator(facts, schema=schema)
        navigator.materialize("City", SUM, "amount")
        navigator.materialize("SaleRegion", SUM, "amount")
        for target in ("Country", "SaleRegion", "State", "Province"):
            view, plan = navigator.answer(target, SUM, "amount")
            direct = cube_view(facts, target, SUM, "amount")
            assert views_equal(view, direct), (target, plan.kind)
        # At least the Country query must have avoided the base table.
        assert navigator.stats.rewrites >= 1

    def test_dimsat_on_every_suite_schema_category(self):
        from repro.generators.suite import suite_schemas

        for name, schema in suite_schemas().items():
            for category in schema.hierarchy.categories:
                result = dimsat(schema, category)
                assert result.satisfiable, (name, category)
                if category != "All":
                    instance = result.witness.to_instance(schema)
                    assert satisfies_all(instance, schema.constraints)
