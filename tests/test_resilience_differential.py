"""Differential tests for the resilience layer.

Two obligations from the ladder's contract:

* **fault-free transparency** - with no faults injected, the
  :class:`~repro.core.resilience.ResilientDecisionEngine` is
  observationally identical to the sequential kernel and the brute-force
  oracle on hypothesis-generated random schemas (the same three-way
  agreement ``tests/test_differential.py`` proves for the plain parallel
  engine);
* **never wrong under faults** - the cache-poisoning hammer injects
  worker-crash and cache-store faults (fixed seed) into a 200-decision
  batch and asserts that every decision completes as either a *correct*
  verdict or a typed UNKNOWN - never a wrong answer, never an unhandled
  exception - and that the :class:`~repro.core.decisioncache.DecisionCache`
  afterwards holds only entries that match a fresh fault-free recompute.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import ALL
from repro.baselines.bruteforce import brute_force_satisfiable
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import dimsat
from repro.core.faults import inject_faults
from repro.core.implication import is_implied
from repro.core.parallel import ParallelDecisionEngine, _decide
from repro.core.resilience import ResilientDecisionEngine, RetryPolicy
from repro.core.summarizability import is_summarizable_in_schema
from repro.generators.location import LOCATION_CONSTRAINTS, location_schema
from repro.generators.random_schema import RandomSchemaConfig, random_schema

SETTINGS = settings(max_examples=25, deadline=None)

FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_ms=0.0, max_delay_ms=0.0)

#: The hammer's fixed fault schedule: ~30% worker crashes and ~30% cache
#: store failures, with crashes starting after a short healthy warm-up so
#: the batch fails mid-flight.  (The engine dedups the 200 requests down
#: to ~19 unique decisions, so worker opportunities are scarce - the
#: warm-up must stay well below that.)  Fixed seed, so CI replays the
#: exact same schedule (CRC32 draws, no process-randomized hashing).
HAMMER_SPEC = "worker-crash:p=0.3,after=5;cache-store:p=0.3;seed=20020601"


@st.composite
def small_schemas(draw):
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.3, 0.6])),
        skip_edge_prob=draw(st.sampled_from([0.0, 0.2])),
        into_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        n_constants=draw(st.integers(min_value=1, max_value=2)),
        attributed_fraction=draw(st.sampled_from([0.0, 0.5])),
        equality_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_schema(config)


@pytest.fixture(scope="module")
def resilient():
    engine = ResilientDecisionEngine(
        retry=FAST_RETRY, max_workers=4, mode="thread", cache=DecisionCache()
    )
    yield engine
    engine.shutdown()


@SETTINGS
@given(small_schemas())
def test_fault_free_dimsat_three_way(resilient, schema):
    """resilient == sequential == brute force, and nothing ever degrades."""
    categories = sorted(schema.hierarchy.categories - {ALL})
    oracle = [brute_force_satisfiable(schema, c) for c in categories]
    sequential = [dimsat(schema, c).satisfiable for c in categories]
    assert sequential == oracle
    items = [(schema, ("dimsat", c)) for c in categories]
    outcomes = resilient.decide_many_outcomes(items)
    assert [o.status for o in outcomes] == ["ok"] * len(categories)
    assert [o.verdict for o in outcomes] == oracle
    assert resilient.decide_many(items) == oracle
    for category, expected in zip(categories, oracle):
        assert resilient.is_satisfiable(schema, category) == expected
    assert resilient.stats.unknown_verdicts == 0
    assert resilient.stats.degraded_sequential == 0


@SETTINGS
@given(small_schemas())
def test_fault_free_summarizability_matches_sequential(resilient, schema):
    categories = sorted(schema.hierarchy.categories - {ALL})
    cases = [
        (target, (source,))
        for target in categories
        for source in categories
        if source != target
    ][:6]
    if not cases:
        return
    expected = [
        is_summarizable_in_schema(schema, t, s, cache=None) for t, s in cases
    ]
    outcomes = resilient.decide_many_outcomes(
        [(schema, ("summarizable", t, s)) for t, s in cases]
    )
    assert [o.verdict for o in outcomes] == expected
    for (target, sources), want in zip(cases, expected):
        assert resilient.is_summarizable(schema, target, sources) == want


def _sequential_oracle(schema, key):
    """A fresh fault-free sequential decision (no cache, no engine)."""
    if key[0] == "dimsat":
        return dimsat(schema, key[1]).satisfiable
    if key[0] == "implies":
        return is_implied(schema, key[1], cache=None)
    return is_summarizable_in_schema(schema, key[1], key[2], cache=None)


def test_cache_poisoning_hammer():
    """200 faulted decisions: every verdict correct or UNKNOWN, cache clean.

    Worker crashes start firing after 20 opportunities (the batch starts
    healthy and fails mid-flight) while cache stores fail ~30% of the
    time throughout; afterwards every ok verdict must equal the
    sequential oracle and every cache entry must equal a fresh fault-free
    recompute.
    """
    schema = location_schema()
    categories = sorted(schema.hierarchy.categories - {ALL})
    constraints = sorted(LOCATION_CONSTRAINTS.values())
    items = []
    index = 0
    while len(items) < 200:
        category = categories[index % len(categories)]
        kind = index % 3
        if kind == 0:
            items.append((schema, ("dimsat", category)))
        elif kind == 1:
            items.append((schema, ("summarizable", "SaleRegion", (category,))))
        else:
            items.append(
                (schema, ("implies", constraints[index % len(constraints)]))
            )
        index += 1
    assert len(items) == 200

    cache = DecisionCache()
    engine = ResilientDecisionEngine(
        retry=FAST_RETRY, max_workers=4, mode="thread", cache=cache
    )
    try:
        with inject_faults(HAMMER_SPEC) as injector:
            outcomes = engine.decide_many_outcomes(items)
        fired = injector.fired()
        assert fired["worker-crash"] > 0, "hammer never hit the workers"
        assert fired["cache-store"] > 0, "hammer never hit the cache store"

        # Every decision completed: correct verdict or typed UNKNOWN.
        assert len(outcomes) == 200
        from repro.core.parallel import normalize_request

        wrong = []
        unknown = 0
        for (schema_i, request), outcome in zip(items, outcomes):
            if outcome.unknown:
                unknown += 1
                assert outcome.verdict is None
                assert outcome.failures, "UNKNOWN without provenance"
                continue
            key = normalize_request(request)
            if outcome.verdict != _sequential_oracle(schema_i, key):
                wrong.append((request, outcome.verdict))
        assert not wrong, f"faulted batch returned wrong verdicts: {wrong}"

        # The cache holds zero faulted entries: every stored verdict
        # matches a fresh fault-free recompute.
        for full_key, stored in list(cache._data.items()):
            fingerprint, key = full_key[0], full_key[1:]
            assert fingerprint == schema.fingerprint()
            recomputed = _decide(schema, key[:-1], None, None, None)
            stored_verdict = (
                stored if isinstance(stored, bool)
                else getattr(stored, "satisfiable", getattr(stored, "implied", None))
            )
            assert stored_verdict == recomputed, f"poisoned cache entry {key}"
    finally:
        engine.shutdown()


def test_hammer_is_deterministic():
    """The same seed replays the same fault schedule (fire counts)."""
    schema = location_schema()
    items = [(schema, ("dimsat", c))
             for c in sorted(schema.hierarchy.categories - {ALL})] * 10

    def run():
        engine = ResilientDecisionEngine(
            retry=RetryPolicy(max_attempts=2, base_delay_ms=0.0),
            max_workers=1, mode="thread", cache=DecisionCache(),
        )
        try:
            with inject_faults("worker-crash:p=0.5;seed=99") as injector:
                outcomes = engine.decide_many_outcomes(items)
            return (
                injector.fired(),
                [o.status for o in outcomes],
                [o.verdict for o in outcomes],
            )
        finally:
            engine.shutdown()

    first, second = run(), run()
    assert first[0] == second[0]
    assert first[1] == second[1]
    assert first[2] == second[2]
