"""Differential tests: parallel engine == sequential kernel == brute force.

The :class:`~repro.core.parallel.ParallelDecisionEngine` must be
observationally identical to the sequential kernel, which in turn must
agree with the first-principles brute-force oracle
(:mod:`repro.baselines.bruteforce`).  On hypothesis-generated random
schemas this file checks that three-way agreement for all three decision
problems - category satisfiability, implication, and summarizability -
across worker counts {1, 4} and both executor modes.

Each engine gets its *own* decision cache so a verdict cached by one
configuration can never be served to another: every configuration really
computes its answers.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro._types import ALL
from repro.baselines.bruteforce import brute_force_implies, brute_force_satisfiable
from repro.errors import ConstraintError
from repro.core.decisioncache import DecisionCache
from repro.core.dimsat import dimsat
from repro.core.implication import is_implied
from repro.core.parallel import ParallelDecisionEngine
from repro.core.schema import DimensionSchema
from repro.core.summarizability import (
    is_summarizable_in_schema,
    summarizability_constraints,
)
from repro.generators.location import location_hierarchy
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from tests.property.strategies import constraints

SETTINGS = settings(max_examples=40, deadline=None)

#: (mode, max_workers) configurations under test.  ``thread``/1 exercises
#: the pure sequential-fallback path, ``thread``/4 the branch fan-out,
#: ``process``/4 the cross-process batch path.
CONFIGURATIONS = [("thread", 1), ("thread", 4), ("process", 4)]


@pytest.fixture(scope="module")
def engines():
    """One long-lived engine per configuration, each with a private cache.

    The process engine is created (and its pool forced into existence)
    first, before any thread pool runs in this module, so the forked
    workers never inherit a live thread.
    """
    built = {}
    for mode, workers in CONFIGURATIONS:
        engine = ParallelDecisionEngine(
            max_workers=workers, mode=mode, cache=DecisionCache()
        )
        if mode == "process":
            engine._get_executor()
        built[(mode, workers)] = engine
    yield built
    for engine in built.values():
        engine.shutdown()


@st.composite
def small_schemas(draw):
    """Random small schemas, every generator knob randomized (kept small
    enough for the exponential brute-force oracle)."""
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.3, 0.6])),
        skip_edge_prob=draw(st.sampled_from([0.0, 0.2])),
        into_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        n_constants=draw(st.integers(min_value=1, max_value=2)),
        attributed_fraction=draw(st.sampled_from([0.0, 0.5])),
        equality_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_schema(config)


@st.composite
def summarizability_cases(draw):
    """A random schema plus a (target, sources) question over it."""
    schema = draw(small_schemas())
    categories = sorted(schema.hierarchy.categories - {ALL})
    target = draw(st.sampled_from(categories))
    pool = [c for c in categories if c != target]
    sources = (
        draw(st.lists(st.sampled_from(pool), min_size=1, max_size=2, unique=True))
        if pool
        else []
    )
    return schema, target, sources


def _brute_force_summarizable(schema, target, sources):
    """Theorem 1 on top of the brute-force implication oracle."""
    for bottom, node in summarizability_constraints(
        schema.hierarchy, target, sources
    ):
        if bottom == ALL:
            continue
        if not brute_force_implies(schema, node):
            return False
    return True


@SETTINGS
@given(small_schemas())
def test_dimsat_differential(engines, schema):
    """Every configuration's batch verdicts == sequential == brute force."""
    categories = sorted(schema.hierarchy.categories - {ALL})
    oracle = [brute_force_satisfiable(schema, c) for c in categories]
    sequential = [dimsat(schema, c).satisfiable for c in categories]
    assert sequential == oracle
    batch = [(schema, ("dimsat", c)) for c in categories]
    for config, engine in engines.items():
        assert engine.decide_many(batch) == oracle, config


@SETTINGS
@given(small_schemas())
def test_dimsat_single_decision_differential(engines, schema):
    """The branch-fan-out single-decision path agrees too (thread mode
    parallelizes EXPAND's first-level branches here)."""
    categories = sorted(schema.hierarchy.categories - {ALL})
    for category in categories:
        expected = dimsat(schema, category).satisfiable
        for config, engine in engines.items():
            assert engine.is_satisfiable(schema, category) == expected, (
                config,
                category,
            )


@settings(max_examples=60, deadline=None)
@given(constraints(), st.lists(constraints(), max_size=2))
def test_implication_differential(engines, query, sigma):
    """Implication over the location hierarchy with random constraints."""
    try:
        # Random atom mixes can violate the numeric-consistency rule (an
        # order predicate and a symbolic constant on the same category);
        # those schemas are rejected uniformly by every path, so skip them.
        schema = DimensionSchema(location_hierarchy(), sigma)
        oracle = brute_force_implies(schema, query)
    except ConstraintError:
        assume(False)
    assert is_implied(schema, query, cache=None) == oracle
    batch = [(schema, ("implies", query))]
    for config, engine in engines.items():
        assert engine.is_implied(schema, query) == oracle, config
        assert engine.decide_many(batch) == [oracle], config


@SETTINGS
@given(summarizability_cases())
def test_summarizability_differential(engines, case):
    schema, target, sources = case
    oracle = _brute_force_summarizable(schema, target, sources)
    assert is_summarizable_in_schema(schema, target, sources, cache=None) == oracle
    batch = [(schema, ("summarizable", target, sources))]
    for config, engine in engines.items():
        assert engine.is_summarizable(schema, target, sources) == oracle, config
        assert engine.decide_many(batch) == [oracle], config


@SETTINGS
@given(small_schemas())
def test_batch_dedup_preserves_alignment(engines, schema):
    """Duplicated and permuted requests come back aligned with the input,
    identical to asking one by one."""
    categories = sorted(schema.hierarchy.categories - {ALL})
    requests = [(schema, ("dimsat", c)) for c in categories]
    doubled = requests + list(reversed(requests))
    expected = [dimsat(schema, c).satisfiable for c in categories]
    expected = expected + list(reversed(expected))
    for config, engine in engines.items():
        assert engine.decide_many(doubled) == expected, config
