"""Cube view tests: Definition 6 both sides, partial rollups, and the
loss/double-count failure modes that motivate summarizability."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap import (
    COUNT,
    MAX,
    MIN,
    SUM,
    FactTable,
    cube_view,
    recombine,
    views_equal,
)

ROWS = [
    ("s1", {"sales": 10.0}),
    ("s2", {"sales": 7.0}),
    ("s3", {"sales": 4.0}),
    ("s4", {"sales": 9.0}),
    ("s5", {"sales": 2.0}),
    ("s6", {"sales": 1.0}),
]


@pytest.fixture()
def facts(loc_instance):
    return FactTable(loc_instance, ROWS)


class TestDirectViews:
    def test_country_totals(self, facts):
        view = cube_view(facts, "Country", SUM, "sales")
        assert view.cells == {"Canada": 18.0, "Mexico": 4.0, "USA": 11.0}

    def test_city_totals(self, facts):
        view = cube_view(facts, "City", SUM, "sales")
        assert view.cells["Toronto"] == 10.0
        assert view.cells["Washington"] == 2.0

    def test_count(self, facts):
        view = cube_view(facts, "Country", COUNT, "sales")
        assert view.cells == {"Canada": 3.0, "Mexico": 1.0, "USA": 2.0}

    def test_min_max(self, facts):
        assert cube_view(facts, "Country", MIN, "sales").cells["Canada"] == 1.0
        assert cube_view(facts, "Country", MAX, "sales").cells["Canada"] == 10.0

    def test_partial_rollup_drops_facts(self, facts):
        # Only the Mexican and Texan stores reach State.
        view = cube_view(facts, "State", SUM, "sales")
        assert view.cells == {"DF": 4.0, "Texas": 9.0}

    def test_rows_scanned_is_fact_count(self, facts):
        view = cube_view(facts, "Country", SUM, "sales")
        assert view.rows_scanned == len(ROWS)

    def test_duplicate_base_members_accumulate(self, loc_instance):
        facts = FactTable(
            loc_instance, [("s1", {"sales": 1.0}), ("s1", {"sales": 2.0})]
        )
        view = cube_view(facts, "Store", SUM, "sales")
        assert view.cells == {"s1": 3.0}

    def test_view_value_accessor(self, facts):
        view = cube_view(facts, "Country", SUM, "sales")
        assert view.value("Canada") == 18.0
        with pytest.raises(OlapError):
            view.value("Atlantis")


class TestRecombination:
    def test_safe_source_matches_direct(self, facts, loc_instance):
        direct = cube_view(facts, "Country", SUM, "sales")
        city = cube_view(facts, "City", SUM, "sales")
        derived = recombine(loc_instance, "Country", [city], SUM)
        assert views_equal(direct, derived)

    def test_safe_source_for_every_aggregate(self, facts, loc_instance):
        for agg in (SUM, COUNT, MIN, MAX):
            direct = cube_view(facts, "Country", agg, "sales")
            city = cube_view(facts, "City", agg, "sales")
            derived = recombine(loc_instance, "Country", [city], agg)
            assert views_equal(direct, derived), agg.name

    def test_unsafe_sources_lose_washington(self, facts, loc_instance):
        direct = cube_view(facts, "Country", SUM, "sales")
        state = cube_view(facts, "State", SUM, "sales")
        province = cube_view(facts, "Province", SUM, "sales")
        derived = recombine(loc_instance, "Country", [state, province], SUM)
        assert derived.cells["USA"] == 9.0  # s5's 2.0 lost
        assert not views_equal(direct, derived)

    def test_overlapping_sources_double_count(self, facts, loc_instance):
        direct = cube_view(facts, "Country", SUM, "sales")
        city = cube_view(facts, "City", SUM, "sales")
        sr = cube_view(facts, "SaleRegion", SUM, "sales")
        derived = recombine(loc_instance, "Country", [city, sr], SUM)
        # Every fact counted twice: once through City, once through SR.
        assert derived.cells["Canada"] == 2 * direct.cells["Canada"]

    def test_aggregate_mismatch_rejected(self, facts, loc_instance):
        city = cube_view(facts, "City", SUM, "sales")
        with pytest.raises(OlapError):
            recombine(loc_instance, "Country", [city], COUNT)

    def test_measure_mismatch_rejected(self, loc_instance):
        facts2 = FactTable(
            loc_instance,
            [("s1", {"sales": 1.0, "profit": 0.5}), ("s2", {"sales": 2.0, "profit": 1.0})],
        )
        a = cube_view(facts2, "City", SUM, "sales")
        b = cube_view(facts2, "Province", SUM, "profit")
        with pytest.raises(OlapError):
            recombine(loc_instance, "Country", [a, b], SUM)

    def test_empty_sources_rejected(self, loc_instance):
        with pytest.raises(OlapError):
            recombine(loc_instance, "Country", [], SUM)


class TestViewsEqual:
    def test_tolerance(self, facts):
        left = cube_view(facts, "Country", SUM, "sales")
        cells = dict(left.cells)
        cells["Canada"] += 1e-12
        from repro.olap import CubeView

        right = CubeView("Country", SUM, "sales", cells)
        assert views_equal(left, right)
        cells["Canada"] += 1.0
        assert not views_equal(left, CubeView("Country", SUM, "sales", cells))

    def test_cell_set_must_match(self, facts):
        from repro.olap import CubeView

        left = cube_view(facts, "Country", SUM, "sales")
        right = CubeView("Country", SUM, "sales", {"Canada": 18.0})
        assert not views_equal(left, right)
