"""OlapEngine tests: integrity reports, query round trips, design-stage
helpers."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap import OlapEngine

ROWS = [
    ("s1", {"sales": 10.0}),
    ("s3", {"sales": 4.0}),
    ("s5", {"sales": 2.0}),
]


@pytest.fixture()
def engine(loc_schema, loc_instance):
    return OlapEngine(loc_schema, loc_instance, ROWS)


class TestIntegrity:
    def test_clean_instance_reports_nothing(self, engine):
        assert engine.check_integrity() == []

    def test_constraint_violation_reported(self, loc_schema, loc_instance):
        from repro.core import DimensionInstance

        # Clone the instance but orphan a store from City (violates (a)).
        members = {m: loc_instance.category_of(m) for m in loc_instance.all_members()}
        edges = [
            (c, p)
            for c, p in loc_instance.member_edges()
            if (c, p) != ("s1", "Toronto")
        ]
        edges.append(("s1", "SR-North"))
        broken = DimensionInstance(loc_schema.hierarchy, members, edges)
        engine = OlapEngine(loc_schema, broken, ROWS)
        problems = engine.check_integrity()
        assert any("Store -> City" in p for p in problems)

    def test_hierarchy_mismatch_rejected(self, loc_schema, chain_instance):
        with pytest.raises(OlapError):
            OlapEngine(loc_schema, chain_instance, [])


class TestQueries:
    def test_materialize_then_query(self, engine):
        engine.materialize("City", "SUM", "sales")
        cells = engine.query_cells("Country", "SUM", "sales")
        assert cells == {"Canada": 10.0, "Mexico": 4.0, "USA": 2.0}

    def test_query_returns_plan(self, engine):
        _view, plan = engine.query("Country", "SUM", "sales")
        assert plan.kind == "base-scan"

    def test_aggregate_objects_accepted(self, engine):
        from repro.olap import SUM

        view = engine.materialize("Country", SUM, "sales")
        assert view.cells["Canada"] == 10.0

    def test_avg_rejected(self, engine):
        with pytest.raises(OlapError):
            engine.query("Country", "AVG", "sales")


class TestDesignStage:
    def test_safe_sources(self, engine):
        sources = engine.safe_aggregation_sources("Country")
        assert frozenset({"City"}) in sources

    def test_safe_sources_exclude_unsafe(self, engine):
        sources = engine.safe_aggregation_sources("Country")
        assert frozenset({"State", "Province"}) not in sources
