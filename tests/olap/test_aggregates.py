"""Distributive aggregate tests: base/combine semantics and the registry."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap import COUNT, MAX, MIN, SUM, all_aggregates, by_name


class TestSemantics:
    def test_sum(self):
        assert SUM.aggregate([1.0, 2.0, 3.0]) == 6.0
        assert SUM.recombine([3.0, 3.0]) == 6.0

    def test_count_combines_with_sum(self):
        assert COUNT.aggregate([5.0, 5.0, 5.0]) == 3.0
        assert COUNT.recombine([3.0, 2.0]) == 5.0
        assert COUNT.combine_name == "SUM"

    def test_min_max(self):
        assert MIN.aggregate([3.0, 1.0, 2.0]) == 1.0
        assert MAX.aggregate([3.0, 1.0, 2.0]) == 3.0
        assert MIN.recombine([1.0, 0.5]) == 0.5
        assert MAX.recombine([1.0, 0.5]) == 1.0

    def test_empty_groups(self):
        assert SUM.aggregate([]) == 0.0
        assert COUNT.aggregate([]) == 0.0
        with pytest.raises(OlapError):
            MIN.aggregate([])
        with pytest.raises(OlapError):
            MAX.recombine([])

    def test_distributivity_on_random_partitions(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(-10, 10) for _ in range(40)]
        for agg in all_aggregates():
            direct = agg.aggregate(values)
            cut = rng.randint(1, len(values) - 1)
            partials = [agg.aggregate(values[:cut]), agg.aggregate(values[cut:])]
            assert agg.recombine(partials) == pytest.approx(direct)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert by_name("sum") is SUM
        assert by_name("Count") is COUNT

    def test_avg_rejected_with_hint(self):
        with pytest.raises(OlapError, match="not distributive"):
            by_name("AVG")

    def test_unknown_rejected(self):
        with pytest.raises(OlapError):
            by_name("MEDIAN")

    def test_all_aggregates_stable(self):
        assert [a.name for a in all_aggregates()] == ["SUM", "COUNT", "MIN", "MAX"]
