"""Incremental view maintenance tests: delta merges equal full rebuilds
for every distributive aggregate."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap import FactTable, all_aggregates, cube_view, views_equal
from repro.olap.maintenance import MaintainedNavigator, apply_delta

BASE_ROWS = [
    ("s1", {"sales": 10.0}),
    ("s3", {"sales": 4.0}),
    ("s4", {"sales": 9.0}),
]
DELTA_ROWS = [
    ("s1", {"sales": 2.0}),   # existing cell grows
    ("s5", {"sales": 7.0}),   # new cells appear (Washington chain)
    ("s6", {"sales": 1.0}),
]


class TestApplyDelta:
    @pytest.mark.parametrize("aggregate", all_aggregates(), ids=lambda a: a.name)
    def test_delta_equals_rebuild(self, loc_instance, aggregate):
        base = FactTable(loc_instance, BASE_ROWS)
        delta = FactTable(loc_instance, DELTA_ROWS)
        full = FactTable(loc_instance, BASE_ROWS + DELTA_ROWS)
        for category in ("Store", "City", "State", "Country"):
            stale = cube_view(base, category, aggregate, "sales")
            patched = apply_delta(loc_instance, stale, delta)
            rebuilt = cube_view(full, category, aggregate, "sales")
            assert views_equal(patched, rebuilt), (aggregate.name, category)

    def test_empty_delta_is_identity(self, loc_instance):
        from repro.olap import SUM

        base = FactTable(loc_instance, BASE_ROWS)
        view = cube_view(base, "Country", SUM, "sales")
        patched = apply_delta(loc_instance, view, FactTable(loc_instance, []))
        assert views_equal(view, patched)

    def test_foreign_dimension_rejected(self, loc_instance, chain_instance):
        from repro.olap import SUM

        base = FactTable(loc_instance, BASE_ROWS)
        view = cube_view(base, "Country", SUM, "sales")
        foreign = FactTable(chain_instance, [("d1", {"sales": 1.0})])
        with pytest.raises(OlapError):
            apply_delta(loc_instance, view, foreign)

    def test_rebuilt_equal_instance_accepted(self, loc_instance):
        """A structurally equal reload of the same dimension is fine -
        the guard must not over-reject the nightly-rebuild case."""
        from repro.generators.location import location_instance
        from repro.olap import SUM

        base = FactTable(loc_instance, BASE_ROWS)
        view = cube_view(base, "Country", SUM, "sales")
        rebuilt = location_instance()
        assert rebuilt is not loc_instance
        delta = FactTable(rebuilt, DELTA_ROWS)
        patched = apply_delta(loc_instance, view, delta)
        full = FactTable(loc_instance, BASE_ROWS + DELTA_ROWS)
        assert views_equal(patched, cube_view(full, "Country", SUM, "sales"))

    def test_unknown_delta_member_rejected(self, loc_instance, chain_hierarchy):
        """Regression: the guard used to compare only hierarchies, so a
        delta over a same-hierarchy instance with *different members*
        slipped through and merged cells under the wrong ancestors."""
        from repro.core.instance import DimensionInstance
        from repro.olap import SUM

        a = DimensionInstance(
            chain_hierarchy,
            members={"d1": "Day", "jan": "Month", "y": "Year"},
            child_parent=[("d1", "jan"), ("jan", "y")],
        )
        b = DimensionInstance(
            chain_hierarchy,
            members={"d9": "Day", "jan": "Month", "y": "Year"},
            child_parent=[("d9", "jan"), ("jan", "y")],
        )
        view = cube_view(FactTable(a, [("d1", {"sales": 1.0})]), "Month", SUM, "sales")
        delta = FactTable(b, [("d9", {"sales": 2.0})])
        with pytest.raises(OlapError, match="d9"):
            apply_delta(a, view, delta)

    def test_divergent_rollup_rejected(self, chain_hierarchy):
        """Regression: a shared member that rolls up *differently* in the
        delta's instance would merge its measures into the wrong cells."""
        from repro.core.instance import DimensionInstance
        from repro.olap import SUM

        a = DimensionInstance(
            chain_hierarchy,
            members={"d1": "Day", "jan": "Month", "feb": "Month", "y": "Year"},
            child_parent=[("d1", "jan"), ("jan", "y"), ("feb", "y")],
        )
        b = DimensionInstance(
            chain_hierarchy,
            members={"d1": "Day", "jan": "Month", "feb": "Month", "y": "Year"},
            child_parent=[("d1", "feb"), ("jan", "y"), ("feb", "y")],
        )
        view = cube_view(FactTable(a, [("d1", {"sales": 1.0})]), "Month", SUM, "sales")
        delta = FactTable(b, [("d1", {"sales": 2.0})])
        with pytest.raises(OlapError, match="d1"):
            apply_delta(a, view, delta)

    def test_divergent_category_rejected(self, chain_hierarchy):
        """A member that is a Day in the delta but a Month in the view's
        instance is named in the error."""
        from repro.core.instance import DimensionInstance
        from repro.olap import SUM

        a = DimensionInstance(
            chain_hierarchy,
            members={"d1": "Day", "x": "Month", "y": "Year"},
            child_parent=[("d1", "x"), ("x", "y")],
        )
        b = DimensionInstance(
            chain_hierarchy,
            members={"x": "Day", "jan": "Month", "y": "Year"},
            child_parent=[("x", "jan"), ("jan", "y")],
        )
        view = cube_view(FactTable(a, [("d1", {"sales": 1.0})]), "Month", SUM, "sales")
        delta = FactTable(b, [("x", {"sales": 2.0})])
        with pytest.raises(OlapError, match="'x'"):
            apply_delta(a, view, delta)


class TestMaintainedNavigator:
    def test_views_follow_appends(self, loc_instance, loc_schema):
        from repro.olap import SUM

        navigator = MaintainedNavigator(
            FactTable(loc_instance, BASE_ROWS), schema=loc_schema
        )
        navigator.materialize("City", SUM, "sales")
        navigator.materialize("Country", SUM, "sales")
        appended = navigator.append(DELTA_ROWS)
        assert appended == 3

        full = FactTable(loc_instance, BASE_ROWS + DELTA_ROWS)
        for category in ("City", "Country"):
            stored, plan = navigator.answer(category, SUM, "sales")
            assert plan.kind == "materialized"
            rebuilt = cube_view(full, category, SUM, "sales")
            assert views_equal(stored, rebuilt), category

    def test_rewrites_after_append_stay_correct(self, loc_instance, loc_schema):
        from repro.olap import SUM

        navigator = MaintainedNavigator(
            FactTable(loc_instance, BASE_ROWS), schema=loc_schema
        )
        navigator.materialize("City", SUM, "sales")
        navigator.append(DELTA_ROWS)
        view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "rewritten"
        full = FactTable(loc_instance, BASE_ROWS + DELTA_ROWS)
        assert views_equal(view, cube_view(full, "Country", SUM, "sales"))

    def test_base_scans_see_new_facts(self, loc_instance, loc_schema):
        from repro.olap import SUM

        navigator = MaintainedNavigator(
            FactTable(loc_instance, BASE_ROWS), schema=loc_schema
        )
        navigator.append(DELTA_ROWS)
        view, plan = navigator.answer("Province", SUM, "sales")
        assert plan.kind == "base-scan"
        assert view.cells["BritishColumbia"] == 1.0

    def test_empty_append(self, loc_instance, loc_schema):
        navigator = MaintainedNavigator(
            FactTable(loc_instance, BASE_ROWS), schema=loc_schema
        )
        assert navigator.append([]) == 0
        assert len(navigator.facts) == len(BASE_ROWS)
