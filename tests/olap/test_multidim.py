"""Multi-dimensional cube tests: location x time, per-dimension
summarizability guards, navigation plans."""

from __future__ import annotations

import pytest

from repro.errors import NavigationError, OlapError
from repro.generators.location import location_instance, location_schema
from repro.generators.suite import time_instance, time_schema
from repro.olap import SUM, COUNT
from repro.olap.multidim import Cube, MultiNavigator, multi_views_equal


def make_cube(with_schemas: bool = True) -> Cube:
    dimensions = {"location": location_instance(), "time": time_instance()}
    schemas = (
        {"location": location_schema(), "time": time_schema()}
        if with_schemas
        else None
    )
    cube = Cube(dimensions, schemas)
    rows = [
        ({"location": "s1", "time": "2021-12-20"}, {"sales": 10.0}),
        ({"location": "s1", "time": "2022-01-05"}, {"sales": 6.0}),
        ({"location": "s3", "time": "2021-12-31"}, {"sales": 4.0}),
        ({"location": "s4", "time": "2022-01-01"}, {"sales": 9.0}),
        ({"location": "s5", "time": "2022-01-05"}, {"sales": 2.0}),
        ({"location": "s6", "time": "2021-12-31"}, {"sales": 1.0}),
    ]
    return cube.load(rows)


class TestConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(OlapError):
            Cube({})

    def test_schema_hierarchy_must_match(self):
        with pytest.raises(OlapError):
            Cube(
                {"location": location_instance()},
                {"location": time_schema()},
            )

    def test_schema_for_unknown_dimension(self):
        with pytest.raises(OlapError):
            Cube(
                {"location": location_instance()},
                {"time": time_schema()},
            )

    def test_facts_must_cover_all_dimensions(self):
        cube = Cube({"location": location_instance(), "time": time_instance()})
        with pytest.raises(OlapError):
            cube.load([({"location": "s1"}, {"sales": 1.0})])

    def test_facts_must_use_base_members(self):
        cube = Cube({"location": location_instance(), "time": time_instance()})
        with pytest.raises(OlapError):
            cube.load(
                [({"location": "Toronto", "time": "2021-12-20"}, {"sales": 1.0})]
            )


class TestViews:
    def test_country_by_year(self):
        cube = make_cube()
        view = cube.view(
            {"location": "Country", "time": "Year"}, SUM, "sales"
        )
        assert view.value(location="Canada", time="2021") == 11.0
        assert view.value(location="Canada", time="2022") == 6.0
        assert view.value(location="Mexico", time="2021") == 4.0
        assert view.value(location="USA", time="2022") == 11.0

    def test_partial_rollup_drops_facts(self):
        cube = make_cube()
        # Week level: the boundary week has no Year, but weeks themselves
        # exist for every fact; State level drops Canadian stores.
        view = cube.view(
            {"location": "State", "time": "Year"}, SUM, "sales"
        )
        keys = set(view.cells)
        assert all(state in ("DF", "Texas") for state, _year in keys)

    def test_count_aggregate(self):
        cube = make_cube()
        view = cube.view(
            {"location": "Country", "time": "Year"}, COUNT, "sales"
        )
        assert view.value(location="Canada", time="2021") == 2.0

    def test_missing_measure(self):
        cube = make_cube()
        with pytest.raises(OlapError):
            cube.view({"location": "Country", "time": "Year"}, SUM, "profit")

    def test_bad_levels(self):
        cube = make_cube()
        with pytest.raises(OlapError):
            cube.view({"location": "Country"}, SUM, "sales")
        with pytest.raises(OlapError):
            cube.view({"location": "Country", "time": "Galaxy"}, SUM, "sales")


class TestRollup:
    def test_safe_rollup_matches_direct(self):
        cube = make_cube()
        fine = cube.view({"location": "City", "time": "Month"}, SUM, "sales")
        rolled = cube.rollup(fine, {"location": "Country", "time": "Year"})
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(rolled, direct)

    def test_single_dimension_step(self):
        cube = make_cube()
        fine = cube.view({"location": "City", "time": "Year"}, SUM, "sales")
        rolled = cube.rollup(fine, {"location": "Country", "time": "Year"})
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(rolled, direct)

    def test_unsafe_time_step_refused(self):
        cube = make_cube()
        fine = cube.view({"location": "Country", "time": "Week"}, SUM, "sales")
        with pytest.raises(NavigationError):
            cube.rollup(fine, {"location": "Country", "time": "Year"})

    def test_unsafe_location_step_refused(self):
        cube = make_cube()
        fine = cube.view({"location": "State", "time": "Year"}, SUM, "sales")
        with pytest.raises(NavigationError):
            cube.rollup(fine, {"location": "Country", "time": "Year"})

    def test_unreachable_levels_refused(self):
        cube = make_cube()
        fine = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert not cube.rollup_is_safe(
            fine.levels, {"location": "City", "time": "Year"}
        )

    def test_week_view_would_be_wrong(self):
        """Why the time step is refused: the boundary week's facts vanish."""
        cube = make_cube()
        week = cube.view({"location": "Country", "time": "Week"}, SUM, "sales")
        year = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        total_week = sum(week.cells.values())
        total_year = sum(year.cells.values())
        # The week view still holds every fact (weeks always exist)...
        assert total_week == total_year
        # ...but the boundary week's cells cannot map to any year.
        boundary_cells = [
            key for key in week.cells if key[1] == "2021-W52"
        ]
        assert boundary_cells

    def test_instance_level_mode(self):
        cube = make_cube(with_schemas=False)
        fine = cube.view({"location": "City", "time": "Month"}, SUM, "sales")
        rolled = cube.rollup(fine, {"location": "Country", "time": "Year"})
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(rolled, direct)


class TestNavigator:
    def test_materialized_hit(self):
        cube = make_cube()
        navigator = MultiNavigator(cube)
        levels = {"location": "Country", "time": "Year"}
        navigator.materialize(levels, SUM, "sales")
        _view, plan = navigator.answer(levels, SUM, "sales")
        assert plan == "materialized"

    def test_rolled_up_plan(self):
        cube = make_cube()
        navigator = MultiNavigator(cube)
        navigator.materialize(
            {"location": "City", "time": "Month"}, SUM, "sales"
        )
        view, plan = navigator.answer(
            {"location": "Country", "time": "Year"}, SUM, "sales"
        )
        assert plan == "rolled-up"
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(view, direct)

    def test_base_scan_when_unsafe(self):
        cube = make_cube()
        navigator = MultiNavigator(cube)
        navigator.materialize(
            {"location": "Country", "time": "Week"}, SUM, "sales"
        )
        view, plan = navigator.answer(
            {"location": "Country", "time": "Year"}, SUM, "sales"
        )
        assert plan == "base-scan"
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(view, direct)

    def test_cheapest_safe_view_chosen(self):
        cube = make_cube()
        navigator = MultiNavigator(cube)
        navigator.materialize(
            {"location": "City", "time": "Month"}, SUM, "sales"
        )
        navigator.materialize(
            {"location": "SaleRegion", "time": "Quarter"}, SUM, "sales"
        )
        view, plan = navigator.answer(
            {"location": "Country", "time": "Year"}, SUM, "sales"
        )
        assert plan == "rolled-up"
        direct = cube.view({"location": "Country", "time": "Year"}, SUM, "sales")
        assert multi_views_equal(view, direct)
