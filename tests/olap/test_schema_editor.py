"""Schema maintenance: every edit op must re-key the decision cache so no
stale verdict survives an add/drop of an edge, category, or constraint."""

from __future__ import annotations

import pytest

from repro.core import (
    DecisionCache,
    DimensionSchema,
    DimensionInstance,
    HierarchySchema,
    is_implied,
    is_summarizable_in_schema,
)
from repro.errors import OlapError, SchemaError
from repro.olap import SUM, FactTable, MaintainedNavigator, SchemaEditor


@pytest.fixture()
def cache() -> DecisionCache:
    return DecisionCache()


@pytest.fixture()
def hierarchy() -> HierarchySchema:
    """Base -> {A, C} -> T -> All: two routes to the target."""
    return HierarchySchema(
        ["Base", "A", "C", "T"],
        [("Base", "A"), ("Base", "C"), ("A", "T"), ("C", "T"), ("T", "All")],
    )


@pytest.fixture()
def schema(hierarchy) -> DimensionSchema:
    return DimensionSchema(hierarchy, ["Base -> C", "C -> T"])


class TestConstraintEdits:
    def test_add_constraint_verdict_is_fresh(self, hierarchy, cache):
        editor = SchemaEditor(DimensionSchema(hierarchy, []), cache)
        assert not is_implied(editor.schema, "Base -> C", cache=cache)
        edited = editor.add_constraint("Base -> C")
        assert is_implied(edited, "Base -> C", cache=cache)
        assert cache.stats.invalidations >= 1

    def test_drop_constraint_verdict_is_fresh(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        assert is_implied(editor.schema, "Base -> C", cache=cache)
        edited = editor.drop_constraint("Base -> C")
        assert not is_implied(edited, "Base -> C", cache=cache)

    def test_drop_constraint_accepts_ast_and_text(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        editor.drop_constraint(schema.constraints[0])
        assert len(editor.schema.constraints) == 1

    def test_drop_unknown_constraint_raises(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        with pytest.raises(SchemaError):
            editor.drop_constraint("Base -> A")
        assert editor.schema is schema  # untouched


class TestHierarchyEdits:
    def test_drop_edge_verdict_is_fresh(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        assert is_summarizable_in_schema(editor.schema, "T", ("C",), cache=cache)
        # A loses its child edge and becomes a bottom that reaches T
        # outside {C}, so the verdict must flip.
        edited = editor.drop_edge("Base", "A")
        assert not is_summarizable_in_schema(edited, "T", ("C",), cache=cache)

    def test_add_edge_verdict_is_fresh(self, hierarchy, cache):
        start = DimensionSchema(
            hierarchy.without_edge("Base", "A"), ["Base -> C", "C -> T"]
        )
        editor = SchemaEditor(start, cache)
        assert not is_summarizable_in_schema(editor.schema, "T", ("C",), cache=cache)
        edited = editor.add_edge("Base", "A")
        assert is_summarizable_in_schema(edited, "T", ("C",), cache=cache)

    def test_add_existing_edge_raises(self, schema, cache):
        with pytest.raises(SchemaError):
            SchemaEditor(schema, cache).add_edge("Base", "A")

    def test_add_category_verdict_is_fresh(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        assert is_summarizable_in_schema(editor.schema, "T", ("C",), cache=cache)
        # Z is a new bottom category under T, reaching it outside {C}.
        edited = editor.add_category("Z", parents=["T"])
        assert not is_summarizable_in_schema(edited, "T", ("C",), cache=cache)

    def test_drop_category_verdict_is_fresh(self, schema, cache):
        editor = SchemaEditor(schema, cache)
        editor.add_category("Z", parents=["T"])
        assert not is_summarizable_in_schema(editor.schema, "T", ("C",), cache=cache)
        edited = editor.drop_category("Z")
        assert is_summarizable_in_schema(edited, "T", ("C",), cache=cache)

    def test_drop_category_removes_its_constraints(self, hierarchy, cache):
        editor = SchemaEditor(
            DimensionSchema(hierarchy, ["Base -> A", "A -> T", "Base -> C"]),
            cache,
        )
        edited = editor.drop_category("A")
        assert "A" not in edited.hierarchy.categories
        assert len(edited.constraints) == 1  # only Base -> C survives


class TestCacheHygiene:
    OPS = {
        "add_edge": lambda e: e.add_edge("Base", "A"),
        "drop_edge": lambda e: e.drop_edge("Base", "A"),
        "add_category": lambda e: e.add_category("Z", parents=["T"]),
        "drop_category": lambda e: e.drop_category("A"),
        "add_constraint": lambda e: e.add_constraint("Base -> A"),
        "drop_constraint": lambda e: e.drop_constraint("C -> T"),
    }
    #: The warmed verdict is ``ds |= C -> T``, whose dependency cone is
    #: {C, T, All}.  Every op except ``drop_constraint`` edits outside
    #: that cone (the Base/A branch), so the verdict is *rekeyed* to the
    #: new fingerprint; dropping ``C -> T`` touches it and evicts.
    SURVIVES = {
        "add_edge": True,
        "drop_edge": True,
        "add_category": True,
        "drop_category": True,
        "add_constraint": True,
        "drop_constraint": False,
    }

    @pytest.mark.parametrize("op", sorted(OPS))
    def test_every_op_rekeys_or_evicts(self, hierarchy, cache, op):
        base = (
            DimensionSchema(hierarchy.without_edge("Base", "A"), ["C -> T"])
            if op == "add_edge"
            else DimensionSchema(hierarchy, ["C -> T"])
        )
        editor = SchemaEditor(base, cache)
        warm = cache.implies(base, "C -> T")
        assert len(cache) == 1
        edited = self.OPS[op](editor)
        assert edited.fingerprint() != base.fingerprint()
        assert editor.history == [base.fingerprint(), edited.fingerprint()]
        # The replaced fingerprint never retains entries, either way.
        assert not cache.holds(base.fingerprint())
        if self.SURVIVES[op]:
            assert len(cache) == 1
            assert cache.stats.rekeyed == 1
            # The survivor answers under the new fingerprint as a hit and
            # is byte-identical to a fresh uncached recomputation.
            hits_before = cache.stats.hits
            survived = cache.implies(edited, "C -> T")
            assert cache.stats.hits == hits_before + 1
            assert survived is warm
            fresh = DecisionCache().implies(edited, "C -> T")
            assert survived.implied == fresh.implied
            assert repr(survived.counterexample) == repr(fresh.counterexample)
        else:
            assert len(cache) == 0
            assert cache.stats.rekeyed == 0
            assert cache.stats.invalidations >= 1

    def test_no_registered_store_retains_replaced_fingerprint(
        self, hierarchy, cache
    ):
        """The dual-store hazard the `invalidate_everywhere` helper
        closes: after any edit, no registered fingerprint store still
        holds the replaced version."""
        from repro.core import compiled_artifact_store, registered_stores

        for op in sorted(self.OPS):
            base = (
                DimensionSchema(hierarchy.without_edge("Base", "A"), ["C -> T"])
                if op == "add_edge"
                else DimensionSchema(hierarchy, ["C -> T"])
            )
            editor = SchemaEditor(base, cache)
            cache.implies(base, "C -> T")
            compiled_artifact_store().get(base)
            self.OPS[op](editor)
            stale = [
                type(store).__name__
                for store in (*registered_stores(), cache)
                if store.holds(base.fingerprint())
            ]
            assert stale == [], f"{op}: stale stores {stale}"

    def test_editor_without_cache_still_edits(self, schema):
        editor = SchemaEditor(schema, cache=None)
        edited = editor.add_constraint("Base -> A")
        assert len(edited.constraints) == 3


class TestCompiledArtifactHygiene:
    """Edits must also drop the compiled decision artifact keyed by the
    replaced schema's fingerprint."""

    @pytest.mark.parametrize("op", sorted(TestCacheHygiene.OPS))
    def test_every_op_invalidates_the_artifact(self, hierarchy, op):
        from repro.core import compiled_artifact_store

        base = (
            DimensionSchema(hierarchy.without_edge("Base", "A"), ["C -> T"])
            if op == "add_edge"
            else DimensionSchema(hierarchy, ["C -> T"])
        )
        store = compiled_artifact_store()
        store.get(base)  # compile the pre-edit version
        invalidations_before = store.stats.invalidations
        editor = SchemaEditor(base, cache=None)
        TestCacheHygiene.OPS[op](editor)
        assert store.stats.invalidations == invalidations_before + 1
        assert store.invalidate(base) == 0  # already gone

    def test_stale_artifact_never_serves_a_post_edit_decision(self, hierarchy):
        """The sharper guarantee behind the eviction hook: even when the
        hook is absent, fingerprint keying makes the old artifact
        unreachable - the post-edit decision compiles (and answers from)
        the new schema, so a stale verdict is impossible."""
        from repro.core import CompiledArtifactStore, CompiledDecisionEngine

        base = DimensionSchema(hierarchy, [])
        store = CompiledArtifactStore()
        engine = CompiledDecisionEngine(cache=None, store=store)
        assert engine.implies(base, "Base -> A").implied is False
        # Edit WITHOUT the eviction hook: the old artifact stays resident.
        edited = base.with_constraints(["Base -> A"])
        assert len(store) == 1
        assert engine.implies(edited, "Base -> A").implied is True
        # The post-edit decision compiled a second artifact; the stale one
        # was never consulted.
        assert len(store) == 2
        # And with the editor's hook, the replaced artifact is dropped too.
        from repro.core import compiled_artifact_store

        shared = compiled_artifact_store()
        shared.get(base)
        editor = SchemaEditor(base, cache=None)
        editor.add_constraint("Base -> A")
        assert shared.invalidate(base) == 0


class TestMaintainedNavigatorEdits:
    @pytest.fixture()
    def navigator(self, hierarchy, cache):
        instance = DimensionInstance(
            hierarchy,
            members={
                "b1": "Base",
                "b2": "Base",
                "a1": "A",
                "c1": "C",
                "c2": "C",
                "t1": "T",
            },
            child_parent=[
                ("b1", "c1"),
                ("b2", "c2"),
                ("a1", "t1"),
                ("c1", "t1"),
                ("c2", "t1"),
            ],
        )
        facts = FactTable(instance, [("b1", {"x": 1.0}), ("b2", {"x": 2.0})])
        nav = MaintainedNavigator(
            facts, schema=DimensionSchema(hierarchy, []), cache=cache
        )
        nav.materialize("C", SUM, "x")
        return nav

    def test_add_constraint_enables_a_rewriting(self, navigator):
        _view, before = navigator.answer("T", SUM, "x")
        assert before.kind == "base-scan"
        navigator.add_constraint("Base -> C")
        view, after = navigator.answer("T", SUM, "x")
        assert after.kind == "rewritten"
        assert after.sources == ("C",)
        assert view.cells == {"t1": 3.0}

    def test_drop_constraint_revokes_the_proof(self, navigator):
        navigator.add_constraint("Base -> C")
        _view, plan = navigator.answer("T", SUM, "x")
        assert plan.kind == "rewritten"
        navigator.drop_constraint("Base -> C")
        _view, after = navigator.answer("T", SUM, "x")
        assert after.kind == "base-scan"
        assert not navigator._summarizable_cache or all(
            key[0] == navigator.schema.fingerprint()
            for key in navigator._summarizable_cache
        )

    def test_edit_without_schema_raises(self, navigator):
        navigator.schema = None
        with pytest.raises(OlapError):
            navigator.add_constraint("Base -> C")
