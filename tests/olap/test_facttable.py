"""Fact table tests: construction checks, accessors, grouping."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap import FactTable


class TestConstruction:
    def test_accepts_base_members(self, loc_instance):
        facts = FactTable(loc_instance, [("s1", {"sales": 1.0})])
        assert len(facts) == 1
        assert facts.measures == frozenset({"sales"})

    def test_rejects_non_base_member(self, loc_instance):
        with pytest.raises(OlapError):
            FactTable(loc_instance, [("Toronto", {"sales": 1.0})])

    def test_rejects_unknown_member(self, loc_instance):
        with pytest.raises(OlapError):
            FactTable(loc_instance, [("ghost", {"sales": 1.0})])

    def test_rejects_inconsistent_measures(self, loc_instance):
        with pytest.raises(OlapError):
            FactTable(
                loc_instance,
                [("s1", {"sales": 1.0}), ("s2", {"profit": 1.0})],
            )

    def test_empty_table(self, loc_instance):
        facts = FactTable(loc_instance, [])
        assert len(facts) == 0
        assert facts.measures == frozenset()


class TestAccessors:
    @pytest.fixture()
    def facts(self, loc_instance):
        return FactTable(
            loc_instance,
            [
                ("s1", {"sales": 1.0, "profit": 0.1}),
                ("s1", {"sales": 2.0, "profit": 0.2}),
                ("s4", {"sales": 3.0, "profit": 0.3}),
            ],
        )

    def test_members_with_multiplicity(self, facts):
        assert facts.members() == ["s1", "s1", "s4"]

    def test_values_in_row_order(self, facts):
        assert facts.values("sales") == [1.0, 2.0, 3.0]

    def test_missing_measure_raises(self, facts):
        with pytest.raises(OlapError):
            facts.values("weight")

    def test_group_by_member(self, facts):
        grouped = facts.group_by_member("sales")
        assert grouped == {"s1": [1.0, 2.0], "s4": [3.0]}

    def test_restrict(self, facts):
        smaller = facts.restrict(["s1"])
        assert len(smaller) == 2
        assert smaller.members() == ["s1", "s1"]

    def test_repr(self, facts):
        assert "3 facts" in repr(facts)
