"""View-selection tests (Section 6 application, experiment E16)."""

from __future__ import annotations

import pytest

from repro.errors import OlapError
from repro.olap.viewselect import (
    Selection,
    ViewSelectionProblem,
    coverage,
    evaluate_selection,
    exhaustive_select,
    greedy_select,
    is_sufficient,
    naive_lattice_coverage,
)

SIZES = {
    "Store": 1000,
    "City": 120,
    "State": 20,
    "Province": 15,
    "SaleRegion": 12,
    "Country": 3,
}


@pytest.fixture()
def problem(loc_schema):
    return ViewSelectionProblem(
        schema=loc_schema,
        targets={"Country": 5.0, "SaleRegion": 2.0, "City": 1.0},
        view_sizes=SIZES,
        base_size=100_000,
    )


class TestConstruction:
    def test_rejects_unknown_category(self, loc_schema):
        with pytest.raises(OlapError):
            ViewSelectionProblem(loc_schema, {"Galaxy": 1.0}, SIZES, 10)

    def test_rejects_bad_weights(self, loc_schema):
        with pytest.raises(OlapError):
            ViewSelectionProblem(loc_schema, {"Country": 0.0}, SIZES, 10)
        with pytest.raises(OlapError):
            ViewSelectionProblem(loc_schema, {"Country": 1.0}, SIZES, 0)

    def test_missing_size_estimate(self, problem):
        with pytest.raises(OlapError):
            problem.size_of("All")


class TestEvaluation:
    def test_empty_selection_scans_base(self, problem):
        evaluation = evaluate_selection(problem, [])
        assert evaluation.storage == 0
        assert evaluation.query_cost == 8.0 * 100_000
        assert evaluation.covered == frozenset()

    def test_materialized_target_answers_itself(self, problem):
        evaluation = evaluate_selection(problem, ["Country"])
        assert evaluation.answerable["Country"] == ("Country",)

    def test_city_view_covers_everything(self, problem):
        # City is summarizable to SaleRegion?  No - but to Country yes.
        evaluation = evaluate_selection(problem, ["City"])
        assert evaluation.answerable["Country"] == ("City",)
        assert evaluation.answerable["City"] == ("City",)

    def test_unsafe_sources_not_used(self, problem):
        evaluation = evaluate_selection(problem, ["State", "Province"])
        assert evaluation.answerable["Country"] == ()

    def test_cheapest_proven_plan_wins(self, problem):
        evaluation = evaluate_selection(problem, ["City", "SaleRegion"])
        # SaleRegion (12 cells) beats City (120 cells) for Country.
        assert evaluation.answerable["Country"] == ("SaleRegion",)

    def test_sufficiency(self, problem):
        assert is_sufficient(problem, ["City", "SaleRegion"])
        assert not is_sufficient(problem, ["State", "Province"])

    def test_coverage_shape(self, problem):
        verdicts = coverage(problem, ["City"])
        assert verdicts == {"Country": True, "SaleRegion": False, "City": True}


class TestSelectors:
    def test_greedy_respects_budget(self, problem):
        selection = greedy_select(problem, storage_budget=140)
        assert selection.storage <= 140

    def test_greedy_improves_over_empty(self, problem):
        empty = evaluate_selection(problem, [])
        selection = greedy_select(problem, storage_budget=200)
        assert selection.query_cost < empty.query_cost

    def test_exhaustive_at_least_as_good_as_greedy(self, problem):
        for budget in (50, 140, 400, 1200):
            greedy = greedy_select(problem, budget)
            optimal = exhaustive_select(problem, budget)
            assert optimal.query_cost <= greedy.query_cost + 1e-9, budget

    def test_exhaustive_with_huge_budget_covers_all(self, problem):
        selection = exhaustive_select(problem, storage_budget=10_000)
        assert selection.covered == frozenset({"Country", "SaleRegion", "City"})

    def test_zero_budget_selects_nothing(self, problem):
        assert greedy_select(problem, 0).categories == frozenset()
        assert exhaustive_select(problem, 0).categories == frozenset()

    def test_exhaustive_candidate_limit(self):
        from repro.core import DimensionSchema, HierarchySchema

        wide = HierarchySchema(
            [f"c{i}" for i in range(17)] + ["Top"],
            [(f"c{i}", "Top") for i in range(17)] + [("Top", "All")],
        )
        schema = DimensionSchema(wide, [])
        problem = ViewSelectionProblem(
            schema,
            {"Top": 1.0},
            {f"c{i}": 1 for i in range(17)},
            100,
        )
        with pytest.raises(OlapError, match="16 candidates"):
            exhaustive_select(problem, storage_budget=100)


class TestNaiveLatticeComparison:
    def test_naive_overpromises_on_heterogeneous_schema(self, problem):
        """E16: the constraint-blind lattice assumption claims {State,
        Province} can answer Country; the constraint-aware test refuses -
        and the OLAP layer (test_cubeview) shows the naive rewriting is
        numerically wrong."""
        naive = naive_lattice_coverage(problem, ["State", "Province"])
        aware = coverage(problem, ["State", "Province"])
        assert naive["Country"] is True
        assert aware["Country"] is False

    def test_naive_and_aware_agree_on_safe_sets(self, problem):
        naive = naive_lattice_coverage(problem, ["City"])
        aware = coverage(problem, ["City"])
        assert naive["Country"] == aware["Country"] is True
