"""Experiment E12: cross-validation of Theorem 1 against Definition 6.

Theorem 1 says: ``c`` is summarizable from ``S`` iff the constraint
``c_b.c implies one(c_b.ci.c ...)`` holds for every bottom category.  We
check both directions on real data:

* when the constraint holds, recombining cube views from ``S`` must equal
  the directly computed view *for every fact table and every distributive
  aggregate* (we sample several random fact tables and all four
  aggregates);
* when the constraint fails, there must exist a fact table on which the
  recombination is wrong - and the witness is easy to build: put one fact
  on a base member violating the condition.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import is_summarizable_in_instance
from repro.core.summarizability import summarizability_constraints
from repro.constraints import satisfies_at
from repro.generators.location import location_instance
from repro.generators.suite import personnel_instance, time_instance
from repro.generators.workloads import random_fact_table
from repro.olap import SUM, all_aggregates, cube_view, recombine, views_equal

INSTANCES = {
    "location": location_instance,
    "personnel": personnel_instance,
    "time": time_instance,
}

SOURCE_SETS = {
    "location": [
        ("Country", ("City",)),
        ("Country", ("SaleRegion",)),
        ("Country", ("State", "Province")),
        ("Country", ("City", "SaleRegion")),
        ("SaleRegion", ("Province",)),
        ("SaleRegion", ("Store",)),
        ("Country", ("Store",)),
        ("State", ("City",)),
    ],
    "personnel": [
        ("Division", ("Department",)),
        ("Division", ("Team",)),
        ("Department", ("Team",)),
        ("Department", ("Employee",)),
    ],
    "time": [
        ("Year", ("Month",)),
        ("Year", ("Week",)),
        ("Year", ("Quarter",)),
        ("Quarter", ("Month",)),
        ("Year", ("Month", "Week")),
    ],
}


def cases():
    for name in INSTANCES:
        for target, sources in SOURCE_SETS[name]:
            yield pytest.param(name, target, sources, id=f"{name}:{target}<-{','.join(sources)}")


@pytest.mark.parametrize("name,target,sources", list(cases()))
def test_theorem1_agrees_with_definition6(name, target, sources):
    instance = INSTANCES[name]()
    summarizable = is_summarizable_in_instance(instance, target, sources)

    if summarizable:
        # Forward direction: correct for every sampled fact table and
        # every distributive aggregate.
        for seed in range(3):
            facts = random_fact_table(instance, n_facts=25, seed=seed)
            for agg in all_aggregates():
                direct = cube_view(facts, target, agg, "amount")
                views = [cube_view(facts, c, agg, "amount") for c in sources]
                derived = recombine(instance, target, views, agg)
                assert views_equal(direct, derived), (seed, agg.name)
    else:
        # Converse: build the witness fact table from a violating member.
        witness = _violating_base_member(instance, target, sources)
        assert witness is not None, "Theorem 1 failed but no violating member"
        facts = type(random_fact_table(instance, 1))(
            instance, [(witness, {"amount": 1.0})]
        )
        direct = cube_view(facts, target, SUM, "amount")
        views = [cube_view(facts, c, SUM, "amount") for c in sources]
        derived = recombine(instance, target, views, SUM)
        assert not views_equal(direct, derived)


def _violating_base_member(instance, target, sources):
    for bottom, node in summarizability_constraints(
        instance.hierarchy, target, sources
    ):
        for member in instance.members(bottom):
            if not satisfies_at(instance, member, node):
                return member
    return None


def test_every_pair_crossvalidates_on_location():
    """Exhaustive single-source sweep over the location dimension."""
    instance = location_instance()
    hierarchy = instance.hierarchy
    categories = sorted(hierarchy.categories - {"All"})
    facts = random_fact_table(instance, n_facts=30, seed=99)
    for source, target in itertools.permutations(categories, 2):
        if not hierarchy.reaches(source, target):
            continue
        summarizable = is_summarizable_in_instance(instance, target, [source])
        direct = cube_view(facts, target, SUM, "amount")
        derived = recombine(
            instance, target, [cube_view(facts, source, SUM, "amount")], SUM
        )
        if summarizable:
            assert views_equal(direct, derived), (source, target)
