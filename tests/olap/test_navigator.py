"""Aggregate navigator tests: plan selection, correctness of rewrites,
cost accounting, and the rewrites-only mode."""

from __future__ import annotations

import pytest

from repro.errors import NavigationError
from repro.olap import SUM, AggregateNavigator, FactTable, cube_view, views_equal

ROWS = [
    ("s1", {"sales": 10.0}),
    ("s2", {"sales": 7.0}),
    ("s3", {"sales": 4.0}),
    ("s4", {"sales": 9.0}),
    ("s5", {"sales": 2.0}),
    ("s6", {"sales": 1.0}),
]


@pytest.fixture()
def facts(loc_instance):
    return FactTable(loc_instance, ROWS)


@pytest.fixture()
def navigator(facts, loc_schema):
    return AggregateNavigator(facts, schema=loc_schema)


class TestPlans:
    def test_materialized_hit(self, navigator):
        navigator.materialize("Country", SUM, "sales")
        view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "materialized"
        assert plan.cost == 0
        assert navigator.stats.materialized_hits == 1

    def test_rewrite_from_city(self, navigator, facts):
        navigator.materialize("City", SUM, "sales")
        view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "rewritten"
        assert plan.sources == ("City",)
        direct = cube_view(facts, "Country", SUM, "sales")
        assert views_equal(view, direct)

    def test_unsafe_views_not_used(self, navigator, facts):
        navigator.materialize("State", SUM, "sales")
        navigator.materialize("Province", SUM, "sales")
        view, plan = navigator.answer("Country", SUM, "sales")
        # {State, Province} is not summarizable: must fall back to a scan.
        assert plan.kind == "base-scan"
        direct = cube_view(facts, "Country", SUM, "sales")
        assert views_equal(view, direct)

    def test_cheapest_correct_rewrite_preferred(self, navigator):
        navigator.materialize("City", SUM, "sales")       # 6 cells
        navigator.materialize("SaleRegion", SUM, "sales") # 3 cells
        _view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "rewritten"
        assert plan.sources == ("SaleRegion",)

    def test_base_scan_when_nothing_materialized(self, navigator):
        _view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "base-scan"
        assert navigator.stats.base_scans == 1

    def test_rewrites_only_raises(self, facts, loc_schema):
        navigator = AggregateNavigator(facts, schema=loc_schema, rewrites_only=True)
        with pytest.raises(NavigationError):
            navigator.answer("Country", SUM, "sales")

    def test_drop_forgets_view(self, navigator):
        navigator.materialize("City", SUM, "sales")
        navigator.drop("City", SUM, "sales")
        _view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "base-scan"


class TestInstanceLevelNavigation:
    def test_instance_mode_allows_instance_safe_rewrites(self, facts):
        # Without a schema, the navigator trusts the current instance; in
        # the figure every store reaches Country through a sale region.
        navigator = AggregateNavigator(facts, schema=None)
        navigator.materialize("SaleRegion", SUM, "sales")
        _view, plan = navigator.answer("Country", SUM, "sales")
        assert plan.kind == "rewritten"


class TestResilientEngine:
    def test_unknown_degrades_to_base_scan_then_recovers(self, facts, loc_schema):
        from repro.core.decisioncache import DecisionCache
        from repro.core.faults import inject_faults
        from repro.core.resilience import ResilientDecisionEngine, RetryPolicy

        engine = ResilientDecisionEngine(
            retry=RetryPolicy(max_attempts=2, base_delay_ms=0.0),
            max_workers=2,
            mode="thread",
            cache=DecisionCache(),
        )
        try:
            navigator = AggregateNavigator(
                facts, schema=loc_schema, engine=engine
            )
            navigator.materialize("City", SUM, "sales")
            # Every summarizability probe degrades to UNKNOWN: the
            # navigator must fall back to the always-correct base scan
            # rather than guess or crash.
            with inject_faults("worker-crash:p=1.0;seed=3"):
                view, plan = navigator.answer("Country", SUM, "sales")
            assert plan.kind == "base-scan"
            assert navigator.stats.unknown_verdicts > 0
            assert views_equal(view, cube_view(facts, "Country", SUM, "sales"))
            # The abstention was not cached: the next healthy query
            # proves City -> Country summarizable and rewrites.
            _view, plan = navigator.answer("Country", SUM, "sales")
            assert plan.kind == "rewritten"
        finally:
            engine.shutdown()


class TestStats:
    def test_counters_accumulate(self, navigator):
        navigator.materialize("City", SUM, "sales")
        navigator.answer("Country", SUM, "sales")
        navigator.answer("Province", SUM, "sales")
        stats = navigator.stats
        assert stats.queries == 2
        assert stats.rewrites >= 1
        assert stats.rows_read > 0

    def test_summarizability_checks_cached(self, navigator):
        navigator.materialize("City", SUM, "sales")
        navigator.answer("Country", SUM, "sales")
        first = navigator.stats.summarizability_checks
        navigator.drop("Country", SUM, "sales")
        navigator.answer("Country", SUM, "sales")
        assert navigator.stats.summarizability_checks == first

    def test_materialized_categories_filtered(self, navigator):
        from repro.olap import COUNT

        navigator.materialize("City", SUM, "sales")
        navigator.materialize("City", COUNT, "sales")
        assert navigator.materialized_categories(SUM, "sales") == ["City"]
