"""Navigator verdict caching: fingerprint-keyed entries that survive
fact-table reloads, and the superset short-circuit in the rewriting
search."""

from __future__ import annotations

import pytest

from repro.core import DecisionCache, DimensionInstance, DimensionSchema, HierarchySchema
from repro.errors import OlapError
from repro.olap import SUM, AggregateNavigator, FactTable


@pytest.fixture()
def hierarchy() -> HierarchySchema:
    return HierarchySchema(
        ["Base", "A", "C", "T"],
        [("Base", "A"), ("Base", "C"), ("A", "T"), ("C", "T"), ("T", "All")],
    )


def make_instance(hierarchy) -> DimensionInstance:
    """Two base members via C; A has a member but no base child, so the
    cube view at A is empty (its zero size orders superset candidates
    ahead of their subsets in the rewriting search)."""
    return DimensionInstance(
        hierarchy,
        members={
            "b1": "Base",
            "b2": "Base",
            "a1": "A",
            "c1": "C",
            "c2": "C",
            "t1": "T",
        },
        child_parent=[
            ("b1", "c1"),
            ("b2", "c2"),
            ("a1", "t1"),
            ("c1", "t1"),
            ("c2", "t1"),
        ],
    )


ROWS = [("b1", {"x": 1.0}), ("b2", {"x": 2.0})]


@pytest.fixture()
def schema(hierarchy) -> DimensionSchema:
    return DimensionSchema(hierarchy, ["Base -> C", "C -> T"])


@pytest.fixture()
def navigator(hierarchy, schema) -> AggregateNavigator:
    facts = FactTable(make_instance(hierarchy), ROWS)
    nav = AggregateNavigator(facts, schema=schema, cache=DecisionCache())
    nav.materialize("C", SUM, "x")
    nav.materialize("A", SUM, "x")
    return nav


class TestReloadFacts:
    def test_schema_verdicts_survive_a_reload(self, hierarchy, navigator):
        _view, plan = navigator.answer("T", SUM, "x")
        assert plan.kind == "rewritten"
        checks = navigator.stats.summarizability_checks
        assert checks > 0
        # Nightly reload: a structurally equal but rebuilt instance.
        navigator.reload_facts(FactTable(make_instance(hierarchy), ROWS))
        _view, again = navigator.answer("T", SUM, "x")
        assert again.kind == "rewritten"
        assert again.sources == plan.sources
        assert navigator.stats.summarizability_checks == checks

    def test_views_are_rebuilt_over_the_new_facts(self, hierarchy, navigator):
        grown = ROWS + [("b1", {"x": 10.0})]
        navigator.reload_facts(FactTable(make_instance(hierarchy), grown))
        view, plan = navigator.answer("T", SUM, "x")
        assert view.cells == {"t1": 13.0}
        assert plan.kind == "rewritten"

    def test_instance_verdicts_die_with_the_instance(self, hierarchy):
        facts = FactTable(make_instance(hierarchy), ROWS)
        nav = AggregateNavigator(facts, schema=None)  # instance-level checks
        nav.materialize("C", SUM, "x")
        nav.answer("T", SUM, "x")
        checks = nav.stats.summarizability_checks
        nav.reload_facts(FactTable(make_instance(hierarchy), ROWS))
        nav.answer("T", SUM, "x")
        assert nav.stats.summarizability_checks > checks

    def test_foreign_dimension_is_rejected(self, navigator):
        other = HierarchySchema(["X"], [("X", "All")])
        instance = DimensionInstance(other, members={"x1": "X"}, child_parent=[])
        with pytest.raises(OlapError):
            navigator.reload_facts(FactTable(instance, [("x1", {"x": 1.0})]))


class TestSupersetShortCircuit:
    def test_supersets_of_a_proven_set_are_skipped(self, navigator):
        # Candidate order by total view size: {A} (empty view, size 0),
        # then {A, C} and {C} tied - and ("A", "C") sorts before ("C",).
        _view, first = navigator.answer("T", SUM, "x")
        assert first.kind == "rewritten" and first.sources == ("C",)
        assert navigator.stats.supersets_skipped == 0
        checks = navigator.stats.summarizability_checks
        # Second query: {C} is proven, so the tied-but-earlier superset
        # {A, C} is pruned without a summarizability check.
        _view, second = navigator.answer("T", SUM, "x")
        assert second.sources == ("C",)
        assert navigator.stats.supersets_skipped == 1
        assert navigator.stats.summarizability_checks == checks

    def test_pruning_never_changes_the_plan(self, hierarchy, schema):
        facts = FactTable(make_instance(hierarchy), ROWS)
        pruned = AggregateNavigator(facts, schema=schema, cache=DecisionCache())
        blind = AggregateNavigator(facts, schema=schema, cache=DecisionCache())
        blind._proven_sources = {}  # never consulted below
        for nav in (pruned, blind):
            nav.materialize("C", SUM, "x")
            nav.materialize("A", SUM, "x")
        for _ in range(3):
            view_p, plan_p = pruned.answer("T", SUM, "x")
            blind._proven_sources.clear()  # disable the short-circuit
            view_b, plan_b = blind.answer("T", SUM, "x")
            assert plan_p.sources == plan_b.sources
            assert view_p.cells == view_b.cells
