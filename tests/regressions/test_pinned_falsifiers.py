"""Pinned falsifiers and seeded regression scenarios.

A falsifier hunt (compiled-vs-sequential differential over adversarial
corpus seeds 0-11, every category and constraint probe) found zero live
divergences, so the modules here pin the *scenarios the harness would
have shrunk to* if one appeared: a minimal unsatisfiable schema produced
by ``shrink_schema`` itself, the Theorem 4 unsat encoding, the census
boundary-week construction, and a byte-exact mixed-trace digest.  Each
test states the verdict the stack must keep giving; a fingerprint drift
here means a generator or shrinker changed behaviour under a pinned
seed, which is exactly the silent breakage this directory exists to
catch.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro._types import ALL
from repro.core import DimensionSchema
from repro.core.compile import CompiledDecisionEngine
from repro.core.dimsat import dimsat
from repro.constraints.semantics import satisfies_all
from repro.generators.adversarial import (
    FAMILIES,
    census_time_instance,
    census_time_schema,
    np_boundary_schema,
)
from repro.generators.workloads import mixed_trace
from repro.io.json_io import schema_from_json

DATA = Path(__file__).parent / "data"

#: sha-256 fingerprints pinned at the time the scenario was frozen.
SHRUNK_UNSAT_FINGERPRINT = (
    "74c2b90d73bf52770f06eb049ab731015c6b45ea70a68e5e8c99b3fff8c49891"
)
NP_UNSAT_FINGERPRINT = (
    "5d6e980be300d0b7ee36ed9436ddfb19316bccb0dfbc5e043b46c91aedc6419a"
)
TRACE_880_DIGEST = (
    "5927c57859f76276a90ba304d6554643a25457b42f3976adb1eabc5b6f264f56"
)


class TestShrunkUnsatSchema:
    """``shrink_schema`` output for the seed-42 unsatisfiable injection,
    written by ``write_falsifier`` - the exact artifact shape the soak
    harness emits on a divergence."""

    PATH = DATA / "unsat_bottom_seed42_shrunk.json"

    def _load(self):
        return schema_from_json(self.PATH.read_text())

    def test_artifact_is_pinned(self):
        schema = self._load()
        assert schema.fingerprint() == SHRUNK_UNSAT_FINGERPRINT
        assert len(schema.hierarchy.categories) == 4
        assert len(schema.constraints) == 1

    def test_bottom_stays_unsatisfiable_on_both_engines(self):
        schema = self._load()
        assert not dimsat(schema, "c0").satisfiable
        engine = CompiledDecisionEngine(cache=None)
        assert not engine.dimsat(schema, "c0").satisfiable

    def test_schema_is_one_minimal(self):
        # The shrinker's contract: dropping the single remaining
        # constraint loses the failure.
        schema = self._load()
        relaxed = DimensionSchema(schema.hierarchy, [])
        assert dimsat(relaxed, "c0").satisfiable

    def test_cli_audit_reports_the_dead_category(self, capsys):
        from repro.cli import main

        # Exit 1 is the contract: an unsatisfiable category fails audit.
        assert main(["audit", str(self.PATH)]) == 1
        out = capsys.readouterr().out
        assert "DEAD" in out and "c0" in out


class TestNpBoundaryUnsat:
    """The Theorem 4 encoding of an unsatisfiable 3-CNF: the one corpus
    family whose expected verdict is NO, pinned byte-for-byte."""

    def test_encoding_is_pinned(self):
        schema = np_boundary_schema(n_vars=3, seed=0, unsat=True)
        assert schema.fingerprint() == NP_UNSAT_FINGERPRINT

    def test_verdict_is_unsat_everywhere(self):
        schema = np_boundary_schema(n_vars=3, seed=0, unsat=True)
        assert not dimsat(schema, "v").satisfiable
        engine = CompiledDecisionEngine(cache=None)
        assert not engine.dimsat(schema, "v").satisfiable

    def test_other_categories_stay_alive(self):
        # Unsatisfiability is local to the encoding root: variable
        # categories themselves keep witnesses (Theorem 3 is per
        # category, not per schema).
        schema = np_boundary_schema(n_vars=3, seed=0, unsat=True)
        alive = [
            c
            for c in sorted(schema.hierarchy.categories - {ALL, "v"})
            if dimsat(schema, c).satisfiable
        ]
        assert alive


class TestCensusBoundaryWeek:
    """ISO week 1 of year N+1 starts inside December of year N: the
    time-hierarchy heterogeneity the census generator plants on purpose.
    A 'fix' that makes Week roll up into Month uniformly would pass most
    tests and silently delete the paper's motivating example."""

    def test_boundary_weeks_exist_and_instance_satisfies_schema(self):
        schema = census_time_schema()
        instance = census_time_instance(years=1, start_year=2022, seed=880)
        boundary = [
            m
            for m in instance.all_members()
            if instance.category_of(m) == "Week"
            and instance.name(m) == "boundary"
        ]
        assert boundary
        assert satisfies_all(instance, schema.constraints)


class TestMixedTraceSeed880:
    """Byte-exact pin of a mixed workload trace.  ``mixed_trace`` feeds
    the soak harness; if its op stream drifts under a fixed seed, every
    'deterministic soak' claim silently dies with it."""

    def _trace(self):
        case = FAMILIES["np-boundary"](seed=880)
        return mixed_trace(case.schema, n_ops=60, seed=880)

    def test_trace_digest_is_pinned(self):
        trace = self._trace()
        digest = hashlib.sha256(
            "\n".join(repr(op) for op in trace).encode()
        ).hexdigest()
        assert digest == TRACE_880_DIGEST

    def test_trace_exercises_every_op_kind(self):
        assert {op[0] for op in self._trace()} == {
            "dimsat",
            "implies",
            "summarizable",
            "navigate",
            "edit",
        }
