"""Workload generator tests: instances from frozen dimensions, fact
tables, and query mixes."""

from __future__ import annotations

import pytest

from repro.constraints import satisfies_all
from repro.core import is_implied
from repro.errors import SchemaError
from repro.generators.location import location_schema
from repro.generators.suite import personnel_schema, product_schema
from repro.generators.workloads import (
    implication_workload,
    instance_from_frozen,
    mixed_trace,
    random_fact_table,
    summarizability_workload,
)


class TestInstanceFromFrozen:
    @pytest.mark.parametrize(
        "schema_factory,root",
        [
            (location_schema, "Store"),
            (personnel_schema, "Employee"),
            (product_schema, "SKU"),
        ],
    )
    def test_valid_and_conformant(self, schema_factory, root):
        schema = schema_factory()
        instance = instance_from_frozen(schema, root, copies=3)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)

    def test_scales_with_copies(self):
        schema = location_schema()
        small = instance_from_frozen(schema, "Store", copies=1)
        large = instance_from_frozen(schema, "Store", copies=5)
        assert len(large) > len(small)

    def test_fan_out_multiplies_roots(self):
        schema = location_schema()
        instance = instance_from_frozen(schema, "Store", copies=1, fan_out=4)
        # 4 frozen templates x 1 copy x 4 leaves.
        assert len(instance.members("Store")) == 16

    def test_pinned_members_shared(self):
        schema = location_schema()
        instance = instance_from_frozen(schema, "Store", copies=3)
        # One Canada, however many Canadian chains.
        assert "Country:Canada" in instance.members("Country")
        assert len(instance.members("Country")) == 3

    def test_unsatisfiable_root_rejected(self):
        schema = location_schema().with_constraints(["not Store -> City"])
        with pytest.raises(SchemaError):
            instance_from_frozen(schema, "Store")


class TestRandomFacts:
    def test_rows_and_measures(self):
        schema = location_schema()
        instance = instance_from_frozen(schema, "Store", copies=2)
        facts = random_fact_table(instance, 40, measures=("sales", "units"), seed=1)
        assert len(facts) == 40
        assert facts.measures == frozenset({"sales", "units"})

    def test_deterministic_by_seed(self):
        schema = location_schema()
        instance = instance_from_frozen(schema, "Store", copies=2)
        a = random_fact_table(instance, 10, seed=5)
        b = random_fact_table(instance, 10, seed=5)
        assert a.members() == b.members()
        assert a.values("amount") == b.values("amount")

    def test_requires_base_members(self, loc_schema):
        from repro.core import DimensionInstance

        empty = DimensionInstance(loc_schema.hierarchy, {}, [])
        with pytest.raises(SchemaError):
            random_fact_table(empty, 5)


class TestQueryWorkloads:
    def test_implication_mix(self):
        schema = location_schema()
        queries = implication_workload(schema, n_queries=10, seed=0)
        assert len(queries) == 10
        verdicts = [is_implied(schema, q) for q in queries]
        assert any(verdicts) and not all(verdicts)

    def test_implication_needs_constraints(self, loc_hierarchy):
        from repro.core import DimensionSchema

        bare = DimensionSchema(loc_hierarchy, [])
        with pytest.raises(SchemaError):
            implication_workload(bare)

    def test_summarizability_queries_shape(self):
        schema = location_schema()
        queries = summarizability_workload(schema, n_queries=15, seed=2)
        assert len(queries) == 15
        for target, sources in queries:
            assert sources
            for source in sources:
                assert schema.hierarchy.reaches(source, target)


class TestMixedTrace:
    def test_deterministic_per_seed(self):
        schema = location_schema()
        one = mixed_trace(schema, n_ops=80, seed=4)
        two = mixed_trace(schema, n_ops=80, seed=4)
        assert one == two
        assert len(one) == 80

    def test_seeds_differ(self):
        schema = location_schema()
        assert mixed_trace(schema, n_ops=80, seed=1) != mixed_trace(
            schema, n_ops=80, seed=2
        )

    def test_covers_all_op_kinds(self):
        schema = location_schema()
        kinds = {op[0] for op in mixed_trace(schema, n_ops=200, seed=0)}
        assert kinds == {"dimsat", "implies", "summarizable", "navigate", "edit"}

    def test_edits_stay_balanced(self):
        schema = location_schema()
        depth = 0
        for op in mixed_trace(schema, n_ops=300, seed=7):
            if op[0] != "edit":
                continue
            if op[1] == "add-implied":
                depth += 1
            else:
                assert op[1] == "drop-added"
                depth -= 1
            # Never drops below the original SIGMA.
            assert depth >= 0

    def test_added_constraints_are_implied(self):
        schema = location_schema()
        for op in mixed_trace(schema, n_ops=200, seed=3):
            if op[0] == "edit" and op[1] == "add-implied":
                assert is_implied(schema, op[2])

    def test_summarizable_sources_lie_below_target(self):
        schema = location_schema()
        for op in mixed_trace(schema, n_ops=200, seed=5):
            if op[0] in ("summarizable", "navigate"):
                _, target, sources = op
                assert sources
                for source in sources:
                    assert schema.hierarchy.reaches(source, target)

    def test_bare_schema_falls_back_to_dimsat(self, loc_hierarchy):
        from repro.core import DimensionSchema

        bare = DimensionSchema(loc_hierarchy, [])
        kinds = {op[0] for op in mixed_trace(bare, n_ops=60, seed=0)}
        assert "implies" not in kinds and "edit" not in kinds
        assert "dimsat" in kinds

    def test_rejects_unknown_weights_and_negative_ops(self):
        schema = location_schema()
        with pytest.raises(SchemaError):
            mixed_trace(schema, n_ops=10, weights={"teleport": 1.0})
        with pytest.raises(SchemaError):
            mixed_trace(schema, n_ops=-1)
        with pytest.raises(SchemaError):
            mixed_trace(schema, n_ops=10, weights={"dimsat": 0.0})

    def test_weights_steer_the_mix(self):
        schema = location_schema()
        trace = mixed_trace(
            schema, n_ops=50, seed=0, weights={"dimsat": 1.0}
        )
        assert {op[0] for op in trace} == {"dimsat"}
