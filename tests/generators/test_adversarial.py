"""The adversarial generator corpus: every family builds valid schemas,
stays deterministic per seed, and agrees with the paper's machinery.

The differential tests here are the corpus's reason to exist: compiled
and sequential engines must agree on every corpus schema, the Theorem 4
encodings must decide exactly like the formulas they encode, and the
census instances must actually satisfy their schemas (they are the
ground the soak harness's aggregate invariants stand on).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import ALL
from repro.core.compile import CompilationError, CompiledDecisionEngine
from repro.core.dimsat import dimsat
from repro.constraints.semantics import satisfies_all
from repro.errors import SchemaError
from repro.generators.adversarial import (
    FAMILIES,
    AdversarialCase,
    adversarial_corpus,
    census_org_instance,
    census_org_schema,
    census_product_instance,
    census_product_schema,
    census_time_instance,
    census_time_schema,
    deep_chain_schema,
    many_bottoms_schema,
    np_boundary_schema,
    shortcut_lattice_schema,
    wide_fanout_schema,
)
from repro.io.json_io import schema_from_json, schema_to_json


class TestFamilies:
    def test_registry_has_at_least_five_families(self):
        assert len(FAMILIES) >= 5

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_case_builds_and_is_wellformed(self, family):
        case = FAMILIES[family](seed=0)
        assert case.family == family
        assert case.root in case.schema.hierarchy.categories
        assert not case.schema.hierarchy.is_cyclic()
        assert case.describe()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_case_is_deterministic_per_seed(self, family):
        one = FAMILIES[family](seed=3)
        two = FAMILIES[family](seed=3)
        assert schema_to_json(one.schema) == schema_to_json(two.schema)
        assert one.schema.fingerprint() == two.schema.fingerprint()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_root_is_satisfiable(self, family):
        case = FAMILIES[family](seed=0)
        assert dimsat(case.schema, case.root).satisfiable

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_schema_round_trips_through_json(self, family):
        case = FAMILIES[family](seed=1)
        reloaded = schema_from_json(schema_to_json(case.schema))
        assert reloaded.fingerprint() == case.schema.fingerprint()


class TestCorpus:
    def test_corpus_covers_all_families(self):
        corpus = adversarial_corpus(seed=0)
        assert {case.family for case in corpus} == set(FAMILIES)

    def test_corpus_is_deterministic(self):
        one = adversarial_corpus(seed=5, per_family=2)
        two = adversarial_corpus(seed=5, per_family=2)
        assert [c.name for c in one] == [c.name for c in two]
        assert [c.schema.fingerprint() for c in one] == [
            c.schema.fingerprint() for c in two
        ]

    def test_family_subset_and_unknown_family(self):
        corpus = adversarial_corpus(seed=0, families=["deep-chain"])
        assert [c.family for c in corpus] == ["deep-chain"]
        with pytest.raises(SchemaError):
            adversarial_corpus(seed=0, families=["no-such-family"])

    def test_compiled_matches_sequential_on_whole_corpus(self):
        engine = CompiledDecisionEngine(cache=None)
        for case in adversarial_corpus(seed=0):
            for category in sorted(case.schema.hierarchy.categories - {ALL}):
                expected = dimsat(case.schema, category).satisfiable
                try:
                    got = engine.dimsat(case.schema, category).satisfiable
                except CompilationError:
                    pytest.skip(f"{case.name} not compilable")
                assert got == expected, (case.name, category)


class TestStructuredFamilies:
    def test_deep_chain_depth_validation(self):
        with pytest.raises(SchemaError):
            deep_chain_schema(depth=1)

    def test_deep_chain_has_skip_choices(self):
        schema = deep_chain_schema(depth=9, skip_every=3, seed=0)
        assert ("d0", "d2") in schema.hierarchy.edges
        assert dimsat(schema, "d0").satisfiable

    def test_wide_fanout_width(self):
        schema = wide_fanout_schema(width=6, seed=0)
        parents = schema.hierarchy.parents("b")
        assert len(parents) == 6
        assert dimsat(schema, "b").satisfiable

    def test_many_bottoms_all_satisfiable(self):
        schema = many_bottoms_schema(n_bottoms=4, seed=0)
        for i in range(4):
            assert dimsat(schema, f"b{i}").satisfiable

    def test_shortcut_lattice_is_dense(self):
        schema = shortcut_lattice_schema(levels=3, width=2, seed=0)
        # Complete bipartite between adjacent levels: every level-0
        # category sees every level-1 category as a parent.
        assert schema.hierarchy.parents("l0_0") >= {"l1_0", "l1_1"}


class TestNpBoundary:
    def test_planted_formula_is_satisfiable(self):
        schema = np_boundary_schema(n_vars=4, seed=0, planted=True)
        assert dimsat(schema, "v").satisfiable

    def test_unsat_variant_is_unsatisfiable(self):
        schema = np_boundary_schema(n_vars=3, seed=0, unsat=True)
        assert not dimsat(schema, "v").satisfiable

    def test_clause_count_defaults_to_critical_ratio(self):
        schema = np_boundary_schema(n_vars=4, seed=0, planted=True)
        # 4 one() constraints (one per variable) + round(4.3 * 4) clauses.
        assert len(schema.constraints) == 4 + 17

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_planted_always_satisfiable_compiled_agrees(self, seed):
        schema = np_boundary_schema(n_vars=3, seed=seed, planted=True)
        sequential = dimsat(schema, "v").satisfiable
        assert sequential is True
        engine = CompiledDecisionEngine(cache=None)
        assert engine.dimsat(schema, "v").satisfiable is True


class TestCensusDomains:
    def test_time_instance_satisfies_schema(self):
        schema = census_time_schema()
        instance = census_time_instance(years=1, start_year=2022, seed=0)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)

    def test_time_instance_has_boundary_weeks(self):
        instance = census_time_instance(years=1, start_year=2022, seed=0)
        boundary = [
            m
            for m in instance.all_members()
            if instance.category_of(m) == "Week"
            and instance.name(m) == "boundary"
        ]
        assert boundary, "a real calendar year always spans ISO years"

    def test_product_instance_satisfies_schema(self):
        schema = census_product_schema()
        instance = census_product_instance(n_skus=40, seed=0)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)

    def test_org_instance_satisfies_schema(self):
        schema = census_org_schema()
        instance = census_org_instance(n_employees=40, seed=0)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)

    def test_census_instances_are_deterministic(self):
        a = census_product_instance(n_skus=30, seed=9)
        b = census_product_instance(n_skus=30, seed=9)
        assert sorted(map(repr, a.all_members())) == sorted(
            map(repr, b.all_members())
        )
        assert sorted(a.member_edges()) == sorted(b.member_edges())


@pytest.mark.slow
class TestCorpusSweep:
    """Wider seeded sweep - deselected from tier-1, run by soak-smoke."""

    @pytest.mark.parametrize("seed", range(5))
    def test_every_family_stays_sound(self, seed):
        engine = CompiledDecisionEngine(cache=None)
        for case in adversarial_corpus(seed=seed):
            expected = dimsat(case.schema, case.root).satisfiable
            assert expected, case.name
            try:
                assert engine.dimsat(case.schema, case.root).satisfiable
            except CompilationError:
                continue
            if case.instance is not None:
                assert satisfies_all(case.instance, case.schema.constraints)
