"""SAT encoding tests (Theorem 4 reduction, experiment E8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dimsat, is_category_satisfiable
from repro.generators.sat_encoding import (
    Cnf,
    DUMMY,
    ROOT,
    cnf_from_dimacs,
    decode_assignment,
    encode,
    phase_transition_cnf,
    random_3cnf,
    variable_category,
)


@st.composite
def cnfs(draw):
    """Arbitrary CNFs: any clause width (including empty), duplicate
    literals and tautological clauses allowed - the round-trip must
    preserve all of them exactly."""
    n_vars = draw(st.integers(min_value=0, max_value=8))
    literal = st.tuples(
        st.integers(min_value=0, max_value=max(0, n_vars - 1)), st.booleans()
    )
    clause = st.lists(literal, max_size=4).map(tuple)
    clauses = (
        draw(st.lists(clause, max_size=6).map(tuple)) if n_vars else ()
    )
    return Cnf(n_vars, clauses)


class TestCnfToolkit:
    def test_evaluate(self):
        cnf = Cnf(2, (((0, True), (1, False)),))  # x0 or not x1
        assert cnf.evaluate([True, True])
        assert cnf.evaluate([False, False])
        assert not cnf.evaluate([False, True])

    def test_brute_force_positive(self):
        cnf = Cnf(2, (((0, True),), ((1, True),)))
        assert cnf.brute_force_satisfiable()

    def test_brute_force_negative(self):
        cnf = Cnf(1, (((0, True),), ((0, False),)))
        assert not cnf.brute_force_satisfiable()

    def test_random_3cnf_shape(self):
        cnf = random_3cnf(5, 12, seed=1)
        assert cnf.n_vars == 5
        assert len(cnf.clauses) == 12
        for clause in cnf.clauses:
            assert len(clause) == 3
            assert len({var for var, _ in clause}) == 3

    def test_random_3cnf_needs_three_vars(self):
        with pytest.raises(ValueError):
            random_3cnf(2, 5)

    def test_phase_transition_ratio(self):
        cnf = phase_transition_cnf(10, seed=0)
        assert len(cnf.clauses) == round(4.26 * 10)


class TestDimacs:
    def test_export_shape(self):
        cnf = Cnf(2, (((0, True), (1, False)),))
        assert cnf.to_dimacs() == "p cnf 2 1\n1 -2 0\n"

    def test_empty_clause_exports(self):
        cnf = Cnf(1, ((),))
        assert cnf.to_dimacs() == "p cnf 1 1\n0\n"
        assert cnf_from_dimacs(cnf.to_dimacs()) == cnf

    def test_parse_skips_comments_and_blank_lines(self):
        text = "c a comment\n\np cnf 2 1\nc mid comment\n1 2 0\n"
        assert cnf_from_dimacs(text) == Cnf(2, (((0, True), (1, True)),))

    def test_parse_multiline_clause(self):
        text = "p cnf 3 1\n1\n-2\n3 0\n"
        cnf = cnf_from_dimacs(text)
        assert cnf.clauses == (((0, True), (1, False), (2, True)),)

    def test_parse_rejects_missing_header(self):
        with pytest.raises(ValueError):
            cnf_from_dimacs("1 2 0\n")

    def test_parse_rejects_duplicate_header(self):
        with pytest.raises(ValueError):
            cnf_from_dimacs("p cnf 1 0\np cnf 1 0\n")

    def test_parse_rejects_out_of_range_literal(self):
        with pytest.raises(ValueError):
            cnf_from_dimacs("p cnf 2 1\n3 0\n")

    def test_parse_rejects_unterminated_clause(self):
        with pytest.raises(ValueError):
            cnf_from_dimacs("p cnf 2 1\n1 2\n")

    def test_parse_rejects_wrong_clause_count(self):
        with pytest.raises(ValueError):
            cnf_from_dimacs("p cnf 2 2\n1 0\n")

    @settings(max_examples=200, deadline=None)
    @given(cnfs())
    def test_round_trip_is_exact(self, cnf):
        """to_dimacs / cnf_from_dimacs is the identity - clause order,
        literal order, and duplicates all survive."""
        assert cnf_from_dimacs(cnf.to_dimacs()) == cnf

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=5000))
    def test_round_trip_preserves_satisfiability(self, seed):
        cnf = random_3cnf(4, 10, seed=seed)
        back = cnf_from_dimacs(cnf.to_dimacs())
        assert back == cnf
        assert back.brute_force_satisfiable() == cnf.brute_force_satisfiable()


class TestEncoding:
    def test_schema_shape(self):
        cnf = random_3cnf(4, 5, seed=0)
        schema = encode(cnf)
        assert schema.hierarchy.has_category(ROOT)
        assert schema.hierarchy.has_category(DUMMY)
        for index in range(4):
            assert schema.hierarchy.has_edge(ROOT, variable_category(index))
        # One into constraint + one constraint per clause.
        assert len(schema.constraints) == 6

    def test_trivially_satisfiable(self):
        cnf = Cnf(3, ())
        assert is_category_satisfiable(encode(cnf), ROOT)

    def test_contradiction_unsatisfiable(self):
        cnf = Cnf(3, (((0, True),), ((0, False),)))
        assert not is_category_satisfiable(encode(cnf), ROOT)

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_brute_force(self, seed):
        cnf = random_3cnf(4, 12, seed=seed)
        expected = cnf.brute_force_satisfiable()
        assert is_category_satisfiable(encode(cnf), ROOT) == expected

    def test_witness_decodes_to_satisfying_assignment(self):
        for seed in range(10):
            cnf = random_3cnf(4, 8, seed=seed)
            result = dimsat(encode(cnf), ROOT)
            if not result.satisfiable:
                continue
            assignment = decode_assignment(
                cnf, result.witness.subhierarchy.categories
            )
            assert cnf.evaluate(assignment)

    def test_unit_clauses_pin_assignment(self):
        cnf = Cnf(3, (((0, True),), ((1, False),), ((2, True),)))
        result = dimsat(encode(cnf), ROOT)
        assert result.satisfiable
        assignment = decode_assignment(cnf, result.witness.subhierarchy.categories)
        assert assignment == [True, False, True]
