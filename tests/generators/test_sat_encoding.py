"""SAT encoding tests (Theorem 4 reduction, experiment E8)."""

from __future__ import annotations

import pytest

from repro.core import dimsat, is_category_satisfiable
from repro.generators.sat_encoding import (
    Cnf,
    DUMMY,
    ROOT,
    decode_assignment,
    encode,
    phase_transition_cnf,
    random_3cnf,
    variable_category,
)


class TestCnfToolkit:
    def test_evaluate(self):
        cnf = Cnf(2, (((0, True), (1, False)),))  # x0 or not x1
        assert cnf.evaluate([True, True])
        assert cnf.evaluate([False, False])
        assert not cnf.evaluate([False, True])

    def test_brute_force_positive(self):
        cnf = Cnf(2, (((0, True),), ((1, True),)))
        assert cnf.brute_force_satisfiable()

    def test_brute_force_negative(self):
        cnf = Cnf(1, (((0, True),), ((0, False),)))
        assert not cnf.brute_force_satisfiable()

    def test_random_3cnf_shape(self):
        cnf = random_3cnf(5, 12, seed=1)
        assert cnf.n_vars == 5
        assert len(cnf.clauses) == 12
        for clause in cnf.clauses:
            assert len(clause) == 3
            assert len({var for var, _ in clause}) == 3

    def test_random_3cnf_needs_three_vars(self):
        with pytest.raises(ValueError):
            random_3cnf(2, 5)

    def test_phase_transition_ratio(self):
        cnf = phase_transition_cnf(10, seed=0)
        assert len(cnf.clauses) == round(4.26 * 10)


class TestEncoding:
    def test_schema_shape(self):
        cnf = random_3cnf(4, 5, seed=0)
        schema = encode(cnf)
        assert schema.hierarchy.has_category(ROOT)
        assert schema.hierarchy.has_category(DUMMY)
        for index in range(4):
            assert schema.hierarchy.has_edge(ROOT, variable_category(index))
        # One into constraint + one constraint per clause.
        assert len(schema.constraints) == 6

    def test_trivially_satisfiable(self):
        cnf = Cnf(3, ())
        assert is_category_satisfiable(encode(cnf), ROOT)

    def test_contradiction_unsatisfiable(self):
        cnf = Cnf(3, (((0, True),), ((0, False),)))
        assert not is_category_satisfiable(encode(cnf), ROOT)

    @pytest.mark.parametrize("seed", range(15))
    def test_agrees_with_brute_force(self, seed):
        cnf = random_3cnf(4, 12, seed=seed)
        expected = cnf.brute_force_satisfiable()
        assert is_category_satisfiable(encode(cnf), ROOT) == expected

    def test_witness_decodes_to_satisfying_assignment(self):
        for seed in range(10):
            cnf = random_3cnf(4, 8, seed=seed)
            result = dimsat(encode(cnf), ROOT)
            if not result.satisfiable:
                continue
            assignment = decode_assignment(
                cnf, result.witness.subhierarchy.categories
            )
            assert cnf.evaluate(assignment)

    def test_unit_clauses_pin_assignment(self):
        cnf = Cnf(3, (((0, True),), ((1, False),), ((2, True),)))
        result = dimsat(encode(cnf), ROOT)
        assert result.satisfiable
        assignment = decode_assignment(cnf, result.witness.subhierarchy.categories)
        assert assignment == [True, False, True]
