"""Suite schema tests: every realistic schema is internally consistent
and exhibits the heterogeneity it documents."""

from __future__ import annotations

import pytest

from repro.constraints import satisfies_all
from repro.core import (
    dimsat,
    is_implied,
    is_summarizable_in_schema,
    unsatisfiable_categories,
)
from repro.generators.suite import (
    geography_schema,
    personnel_instance,
    personnel_schema,
    product_schema,
    suite_schemas,
    time_instance,
    time_schema,
)


class TestSuiteWideInvariants:
    def test_five_schemas(self):
        assert sorted(suite_schemas()) == [
            "geography",
            "personnel",
            "product",
            "retail",
            "time",
        ]

    @pytest.mark.parametrize("name", sorted(suite_schemas()))
    def test_every_category_satisfiable(self, name):
        schema = suite_schemas()[name]
        assert unsatisfiable_categories(schema) == []

    @pytest.mark.parametrize("name", sorted(suite_schemas()))
    def test_sigma_self_implied(self, name):
        schema = suite_schemas()[name]
        for node in schema.constraints:
            assert is_implied(schema, node), f"{name}: {node}"


class TestTime:
    def test_instance_valid_and_conformant(self):
        instance = time_instance()
        assert instance.is_valid()
        assert satisfies_all(instance, time_schema().constraints)

    def test_boundary_week_has_no_year(self):
        instance = time_instance()
        assert instance.ancestor_in("2021-W52", "Year") is None
        assert instance.ancestor_in("2021-W51", "Year") == "2021"

    def test_year_summarizable_from_month_not_week(self):
        schema = time_schema()
        assert is_summarizable_in_schema(schema, "Year", ["Month"])
        assert is_summarizable_in_schema(schema, "Year", ["Quarter"])
        assert not is_summarizable_in_schema(schema, "Year", ["Week"])


class TestPersonnel:
    def test_instance_valid_and_conformant(self):
        instance = personnel_instance()
        assert instance.is_valid()
        assert satisfies_all(instance, personnel_schema().constraints)

    def test_consultant_skips_team(self):
        instance = personnel_instance()
        assert instance.ancestor_in("consultant", "Team") is None
        assert instance.ancestor_in("consultant", "Department") == "dept-sales"

    def test_division_not_summarizable_from_team(self):
        schema = personnel_schema()
        assert is_summarizable_in_schema(schema, "Division", ["Department"])
        assert not is_summarizable_in_schema(schema, "Division", ["Team"])


class TestProduct:
    def test_branded_xor_generic(self):
        schema = product_schema()
        assert is_implied(
            schema, "one(SKU -> Brand, SKU -> GenericClass)"
        )
        assert not is_implied(schema, "SKU -> Brand")

    def test_frozen_dimensions_split_by_branch(self):
        from repro.core import enumerate_frozen_dimensions

        schema = product_schema()
        frozen = enumerate_frozen_dimensions(schema, "SKU")
        assert len(frozen) >= 2
        branded = [f for f in frozen if "Brand" in f.categories]
        generic = [f for f in frozen if "GenericClass" in f.categories]
        assert branded and generic
        assert not any("Brand" in f.categories and "GenericClass" in f.categories
                       for f in frozen)


class TestGeography:
    def test_exactly_one_route_out_of_city(self):
        schema = geography_schema()
        assert is_implied(schema, "City.State")
        assert not is_implied(schema, "City -> County")

    def test_state_summarizable_from_city(self):
        schema = geography_schema()
        assert is_summarizable_in_schema(schema, "State", ["City"])
        assert not is_summarizable_in_schema(schema, "State", ["County"])


class TestProductInstance:
    def test_valid_and_conformant(self):
        from repro.generators.suite import product_instance

        instance = product_instance()
        assert instance.is_valid()
        assert satisfies_all(instance, product_schema().constraints)

    def test_branded_and_generic_mix(self):
        from repro.generators.suite import product_instance

        instance = product_instance()
        assert instance.ancestor_in("sku-tv", "Brand") == "brand-vix"
        assert instance.ancestor_in("sku-storecola", "Brand") is None


class TestGeographyInstance:
    def test_valid_and_conformant(self):
        from repro.generators.suite import geography_instance

        instance = geography_instance()
        assert instance.is_valid()
        assert satisfies_all(instance, geography_schema().constraints)

    def test_independent_city_skips_county(self):
        from repro.generators.suite import geography_instance

        instance = geography_instance()
        assert instance.ancestor_in("richmond", "County") is None
        assert instance.ancestor_in("richmond", "State") == "virginia"

    def test_state_summarizable_from_city_in_instance(self):
        from repro.core import is_summarizable_in_instance
        from repro.generators.suite import geography_instance

        instance = geography_instance()
        assert is_summarizable_in_instance(instance, "State", ["City"])
        assert not is_summarizable_in_instance(instance, "State", ["County"])
