"""Location generator tests: the builders agree with the paper's prose."""

from __future__ import annotations

from repro.constraints import satisfies_all
from repro.generators.location import (
    LOCATION_CONSTRAINTS,
    expected_frozen_names,
    figure5_subhierarchy,
    location_hierarchy,
    location_instance,
    location_schema,
    paper_frozen_structures,
)


class TestHierarchy:
    def test_category_set(self):
        g = location_hierarchy()
        assert g.categories == frozenset(
            {"Store", "City", "State", "Province", "SaleRegion", "Country", "All"}
        )

    def test_store_is_the_only_bottom(self):
        assert location_hierarchy().bottom_categories() == frozenset({"Store"})

    def test_acyclic_with_shortcuts(self):
        g = location_hierarchy()
        assert not g.is_cyclic()
        assert g.shortcuts()  # City -> Country at least


class TestSchema:
    def test_seven_constraints(self):
        assert len(location_schema().constraints) == len(LOCATION_CONSTRAINTS) == 7

    def test_constraint_labels_cover_figure5(self):
        assert sorted(LOCATION_CONSTRAINTS) == list("abcdefg")


class TestInstance:
    def test_valid_and_satisfies_schema(self):
        instance = location_instance()
        assert instance.is_valid()
        assert satisfies_all(instance, location_schema().constraints)

    def test_prose_all_stores_reach_city_saleregion_country(self):
        instance = location_instance()
        for store in instance.members("Store"):
            for category in ("City", "SaleRegion", "Country"):
                assert instance.rolls_up_to_category(store, category), (
                    store,
                    category,
                )

    def test_prose_canadian_stores_via_province(self):
        instance = location_instance()
        for store in ("s1", "s2", "s6"):
            assert instance.rolls_up_to_category(store, "Province")
            assert not instance.rolls_up_to_category(store, "State")

    def test_prose_mexico_usa_via_state(self):
        instance = location_instance()
        for store in ("s3", "s4"):
            assert instance.rolls_up_to_category(store, "State")
            assert not instance.rolls_up_to_category(store, "Province")

    def test_prose_washington_exception(self):
        instance = location_instance()
        assert instance.ancestor_in("s5", "City") == "Washington"
        assert not instance.rolls_up_to_category("s5", "State")
        assert instance.ancestor_in("Washington", "Country") == "USA"

    def test_prose_mexican_states_and_provinces_in_saleregions(self):
        instance = location_instance()
        assert instance.rolls_up_to_category("DF", "SaleRegion")
        assert instance.rolls_up_to_category("Ontario", "SaleRegion")
        # The US state is the exception.
        assert not instance.rolls_up_to_category("Texas", "SaleRegion")


class TestFrozenArtifacts:
    def test_four_structures(self, loc_hierarchy):
        structures = paper_frozen_structures()
        assert set(structures) == {"Canada", "Mexico", "USA", "USA-Washington"}
        for sub in structures.values():
            sub.validate(loc_hierarchy)

    def test_expected_names_align_with_structures(self):
        names = expected_frozen_names()
        assert set(names) == set(paper_frozen_structures())
        assert names["USA-Washington"]["City"] == "Washington"

    def test_figure5_subhierarchy_contains_state_and_province(self, loc_hierarchy):
        sub = figure5_subhierarchy()
        sub.validate(loc_hierarchy)
        assert {"State", "Province"} <= sub.categories
