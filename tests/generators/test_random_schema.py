"""Random schema generator tests: structural guarantees and determinism."""

from __future__ import annotations

import pytest

from repro.core import ALL, dimsat
from repro.errors import SchemaError
from repro.generators.random_schema import (
    RandomSchemaConfig,
    bottom_category,
    make_unsatisfiable,
    random_hierarchy,
    random_schema,
    schemas_by_size,
    shrink_schema,
    write_falsifier,
)
from repro.io.json_io import schema_from_json, schema_to_json


class TestHierarchyGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_structure_is_legal(self, seed):
        config = RandomSchemaConfig(n_categories=12, seed=seed)
        hierarchy, primary = random_hierarchy(config)
        assert len(hierarchy.categories) == 13  # + All
        assert not hierarchy.is_cyclic()
        # Every category has a primary edge.
        assert {c for c, _ in primary} == hierarchy.categories - {ALL}

    def test_deterministic_for_seed(self):
        config = RandomSchemaConfig(n_categories=10, seed=42)
        a, _ = random_hierarchy(config)
        b, _ = random_hierarchy(config)
        assert a == b

    def test_seeds_differ(self):
        a, _ = random_hierarchy(RandomSchemaConfig(n_categories=10, seed=1))
        b, _ = random_hierarchy(RandomSchemaConfig(n_categories=10, seed=2))
        assert a != b

    def test_small_category_counts(self):
        for n in (1, 2, 3):
            config = RandomSchemaConfig(n_categories=n, n_layers=min(2, n), seed=0)
            hierarchy, _ = random_hierarchy(config)
            assert len(hierarchy.categories) == n + 1


class TestSchemaGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_schema_validates(self, seed):
        schema = random_schema(RandomSchemaConfig(n_categories=10, seed=seed))
        assert schema.constraints  # into constraints at least

    def test_into_fraction_zero_gives_no_intos(self):
        config = RandomSchemaConfig(
            n_categories=10,
            seed=0,
            into_fraction=0.0,
            choice_constraint_prob=0.0,
            equality_constraint_prob=0.0,
            attributed_fraction=0.0,
        )
        schema = random_schema(config)
        assert schema.constraints == ()

    def test_constants_bounded_by_config(self):
        config = RandomSchemaConfig(
            n_categories=12, seed=3, n_constants=3, attributed_fraction=1.0,
            equality_constraint_prob=1.0,
        )
        schema = random_schema(config)
        assert schema.max_constants() <= 3

    def test_bottom_category_is_a_bottom(self):
        schema = random_schema(RandomSchemaConfig(n_categories=10, seed=1))
        bottom = bottom_category(schema)
        assert bottom in schema.hierarchy.bottom_categories()


class TestUnsatInjection:
    @pytest.mark.parametrize("seed", range(4))
    def test_forced_unsat(self, seed):
        schema = random_schema(RandomSchemaConfig(n_categories=8, seed=seed))
        bottom = bottom_category(schema)
        assert dimsat(schema, bottom).satisfiable
        broken = make_unsatisfiable(schema, bottom)
        assert not dimsat(broken, bottom).satisfiable


class TestSweeps:
    def test_schemas_by_size(self):
        schemas = schemas_by_size([4, 8, 12])
        assert sorted(schemas) == [4, 8, 12]
        for size, schema in schemas.items():
            assert len(schema.hierarchy.categories) == size + 1


class TestShrinking:
    def _unsat_setup(self, seed=42):
        schema = random_schema(
            RandomSchemaConfig(n_categories=8, n_layers=3, seed=seed)
        )
        bottom = bottom_category(schema)
        broken = make_unsatisfiable(schema, bottom)

        def predicate(candidate):
            if bottom not in candidate.hierarchy.categories:
                return False
            return not dimsat(candidate, bottom).satisfiable

        return broken, bottom, predicate

    def test_shrink_preserves_failure_and_minimizes(self):
        broken, bottom, predicate = self._unsat_setup()
        small = shrink_schema(broken, predicate)
        assert predicate(small)
        assert len(small.hierarchy.categories) < len(
            broken.hierarchy.categories
        )
        assert len(small.constraints) < len(broken.constraints)
        # 1-minimal over constraints: dropping any one loses the failure.
        for node in small.constraints:
            remaining = [c for c in small.constraints if c is not node]
            from repro.core import DimensionSchema

            candidate = DimensionSchema(small.hierarchy, remaining)
            assert not predicate(candidate)

    def test_shrink_is_deterministic(self):
        broken, _, predicate = self._unsat_setup()
        one = shrink_schema(broken, predicate)
        two = shrink_schema(broken, predicate)
        assert schema_to_json(one) == schema_to_json(two)

    def test_shrink_rejects_passing_start(self):
        schema = random_schema(RandomSchemaConfig(n_categories=6, seed=0))
        with pytest.raises(SchemaError):
            shrink_schema(schema, lambda s: False)

    def test_predicate_exception_treated_as_not_failing(self):
        broken, bottom, predicate = self._unsat_setup()

        def brittle(candidate):
            if len(candidate.hierarchy.categories) < 4:
                raise RuntimeError("boom")
            return predicate(candidate)

        small = shrink_schema(broken, brittle)
        # Never shrinks into the region where the predicate blows up.
        assert len(small.hierarchy.categories) >= 4
        assert predicate(small)

    def test_write_falsifier_round_trips(self, tmp_path):
        broken, bottom, predicate = self._unsat_setup()
        small = shrink_schema(broken, predicate)
        path = write_falsifier(
            small, str(tmp_path / "sub" / "fals.json"), note="seed-42 unsat"
        )
        text = (tmp_path / "sub" / "fals.json").read_text()
        import json

        assert json.loads(text)["_falsifier"] == "seed-42 unsat"
        reloaded = schema_from_json(text)
        assert predicate(reloaded)
        assert reloaded.fingerprint() == small.fingerprint()


class TestCrossProcessDeterminism:
    """Identical seeds must yield identical schemas in *any* interpreter:
    the generator may not lean on hash-randomized iteration order."""

    SNIPPET = (
        "from repro.generators.random_schema import "
        "RandomSchemaConfig, random_schema; "
        "from repro.io.json_io import schema_to_json; "
        "import hashlib, sys; "
        "cfg = RandomSchemaConfig(n_categories=9, n_layers=3, "
        "extra_edge_prob=0.4, into_fraction=0.5, "
        "choice_constraint_prob=0.7, attributed_fraction=0.5, seed=880); "
        "schema = random_schema(cfg); "
        "print(hashlib.sha256(schema_to_json(schema).encode()).hexdigest()); "
        "print(schema.fingerprint())"
    )

    def test_same_schema_under_different_hash_seeds(self):
        import os
        import subprocess
        import sys

        digests = set()
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, "-c", self.SNIPPET],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            digests.add(result.stdout)
        assert len(digests) == 1, "schema bytes drifted with PYTHONHASHSEED"

    def test_primary_edges_span_every_category_once(self):
        hierarchy, primary = random_hierarchy(RandomSchemaConfig(seed=1))
        children = [child for child, _ in primary]
        # Exactly one spanning edge per non-All category, emitted in the
        # deterministic layer order the generator walks.
        assert sorted(children) == sorted(hierarchy.categories - {"All"})
        assert len(children) == len(set(children))
        _, again = random_hierarchy(RandomSchemaConfig(seed=1))
        assert primary == again
