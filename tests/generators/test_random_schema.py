"""Random schema generator tests: structural guarantees and determinism."""

from __future__ import annotations

import pytest

from repro.core import ALL, dimsat
from repro.generators.random_schema import (
    RandomSchemaConfig,
    bottom_category,
    make_unsatisfiable,
    random_hierarchy,
    random_schema,
    schemas_by_size,
)


class TestHierarchyGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_structure_is_legal(self, seed):
        config = RandomSchemaConfig(n_categories=12, seed=seed)
        hierarchy, primary = random_hierarchy(config)
        assert len(hierarchy.categories) == 13  # + All
        assert not hierarchy.is_cyclic()
        # Every category has a primary edge.
        assert {c for c, _ in primary} == hierarchy.categories - {ALL}

    def test_deterministic_for_seed(self):
        config = RandomSchemaConfig(n_categories=10, seed=42)
        a, _ = random_hierarchy(config)
        b, _ = random_hierarchy(config)
        assert a == b

    def test_seeds_differ(self):
        a, _ = random_hierarchy(RandomSchemaConfig(n_categories=10, seed=1))
        b, _ = random_hierarchy(RandomSchemaConfig(n_categories=10, seed=2))
        assert a != b

    def test_small_category_counts(self):
        for n in (1, 2, 3):
            config = RandomSchemaConfig(n_categories=n, n_layers=min(2, n), seed=0)
            hierarchy, _ = random_hierarchy(config)
            assert len(hierarchy.categories) == n + 1


class TestSchemaGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_schema_validates(self, seed):
        schema = random_schema(RandomSchemaConfig(n_categories=10, seed=seed))
        assert schema.constraints  # into constraints at least

    def test_into_fraction_zero_gives_no_intos(self):
        config = RandomSchemaConfig(
            n_categories=10,
            seed=0,
            into_fraction=0.0,
            choice_constraint_prob=0.0,
            equality_constraint_prob=0.0,
            attributed_fraction=0.0,
        )
        schema = random_schema(config)
        assert schema.constraints == ()

    def test_constants_bounded_by_config(self):
        config = RandomSchemaConfig(
            n_categories=12, seed=3, n_constants=3, attributed_fraction=1.0,
            equality_constraint_prob=1.0,
        )
        schema = random_schema(config)
        assert schema.max_constants() <= 3

    def test_bottom_category_is_a_bottom(self):
        schema = random_schema(RandomSchemaConfig(n_categories=10, seed=1))
        bottom = bottom_category(schema)
        assert bottom in schema.hierarchy.bottom_categories()


class TestUnsatInjection:
    @pytest.mark.parametrize("seed", range(4))
    def test_forced_unsat(self, seed):
        schema = random_schema(RandomSchemaConfig(n_categories=8, seed=seed))
        bottom = bottom_category(schema)
        assert dimsat(schema, bottom).satisfiable
        broken = make_unsatisfiable(schema, bottom)
        assert not dimsat(broken, bottom).satisfiable


class TestSweeps:
    def test_schemas_by_size(self):
        schemas = schemas_by_size([4, 8, 12])
        assert sorted(schemas) == [4, 8, 12]
        for size, schema in schemas.items():
            assert len(schema.hierarchy.categories) == size + 1
