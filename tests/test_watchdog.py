"""Bench watchdog tests: the gated-metric comparison, the self-test,
and the CLI exit codes."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_WATCHDOG_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "watchdog.py"
)
_spec = importlib.util.spec_from_file_location("watchdog", _WATCHDOG_PATH)
watchdog = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("watchdog", watchdog)
_spec.loader.exec_module(watchdog)


def _write_docs(
    directory: Path, b1=4.0, b2=3.0, b4=2.0, b5=1.0, b6=11.0, b7=94.0,
    b8p99=2.0, b8hit=95.0,
):
    directory.mkdir(parents=True, exist_ok=True)
    documents = {
        "BENCH_1.json": {"total": {"speedup": b1}},
        "BENCH_2.json": {"speedup": b2},
        "BENCH_4.json": {"overhead_pct": b4},
        "BENCH_5.json": {"overhead_pct": b5},
        "BENCH_6.json": {"total": {"speedup": b6}},
        "BENCH_7.json": {"total": {"survival_pct": b7}},
        "BENCH_8.json": {"total": {"p99_ms": b8p99, "warm_hit_pct": b8hit}},
    }
    for filename, document in documents.items():
        (directory / filename).write_text(json.dumps(document) + "\n")


class TestCompare:
    def test_identical_trajectory_passes(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh")
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert report["ok"] and report["regressions"] == 0
        assert len(report["metrics"]) == 8

    def test_25pct_speedup_loss_is_flagged(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b2=3.0 / 1.25)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert not report["ok"]
        (regressed,) = [r for r in report["metrics"] if r["regressed"]]
        assert regressed["file"] == "BENCH_2.json"
        assert regressed["cost_change_pct"] == pytest.approx(25.0)

    def test_compiled_tier_speedup_loss_is_flagged(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b6=11.0 / 1.25)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert not report["ok"]
        (regressed,) = [r for r in report["metrics"] if r["regressed"]]
        assert regressed["file"] == "BENCH_6.json"

    def test_edit_survival_drop_is_flagged(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b7=94.0 / 1.25)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert not report["ok"]
        (regressed,) = [r for r in report["metrics"] if r["regressed"]]
        assert regressed["file"] == "BENCH_7.json"

    def test_server_p99_latency_regression_is_flagged(self, tmp_path):
        # A latency metric is an absolute cost: 25% slower p99 is a 25%
        # cost increase, over the 15% gate.
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b8p99=2.0 * 1.25)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert not report["ok"]
        (regressed,) = [r for r in report["metrics"] if r["regressed"]]
        assert regressed["file"] == "BENCH_8.json"
        assert regressed["metric"] == "total.p99_ms"
        assert regressed["cost_change_pct"] == pytest.approx(25.0)

    def test_server_warm_hit_rate_drop_is_flagged(self, tmp_path):
        # 95% -> 75% warm hits is a ~26.7% cost increase (1/0.75 vs
        # 1/0.95), over the 15% gate.
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b8hit=75.0)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert not report["ok"]
        (regressed,) = [r for r in report["metrics"] if r["regressed"]]
        assert regressed["metric"] == "total.warm_hit_pct"

    def test_overhead_growth_is_a_cost_ratio_not_a_pct_diff(self, tmp_path):
        # +2% -> +7% overhead is only a ~4.9% cost increase; the 15%
        # trajectory gate must not fire on a small absolute drift.
        _write_docs(tmp_path / "baseline", b4=2.0)
        _write_docs(tmp_path / "fresh", b4=7.0)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert report["ok"]

    def test_large_overhead_regression_is_flagged(self, tmp_path):
        _write_docs(tmp_path / "baseline", b5=1.0)
        _write_docs(tmp_path / "fresh", b5=25.0)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        flagged = [r["file"] for r in report["metrics"] if r["regressed"]]
        assert flagged == ["BENCH_5.json"]

    def test_improvements_never_fail(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b1=8.0, b2=6.0, b4=-2.0, b5=-3.0)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        assert report["ok"]

    def test_missing_document_is_a_watchdog_error(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        (tmp_path / "fresh").mkdir()
        with pytest.raises(watchdog.WatchdogError, match="missing"):
            watchdog.compare(
                tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
            )

    def test_missing_metric_is_a_watchdog_error(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh")
        (tmp_path / "fresh" / "BENCH_2.json").write_text("{}\n")
        with pytest.raises(watchdog.WatchdogError, match="missing gated"):
            watchdog.compare(
                tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
            )

    def test_render_marks_regressions(self, tmp_path):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b1=4.0 / 2.0)
        report = watchdog.compare(
            tmp_path / "baseline", tmp_path / "fresh", tolerance=0.15
        )
        text = watchdog.render(report)
        assert "REGRESSED" in text and "WATCHDOG FAIL" in text


class TestSelfTest:
    def test_self_test_passes(self, tmp_path):
        assert watchdog.self_test(tmp_path) == []

    def test_self_test_catches_a_broken_comparator(self, tmp_path, monkeypatch):
        """If the comparison stopped flagging regressions, the self-test
        must fail - that is the point of running it in CI first."""
        monkeypatch.setattr(
            watchdog,
            "compare",
            lambda baseline, fresh, tolerance: {
                "baseline": str(baseline),
                "fresh": str(fresh),
                "tolerance_pct": tolerance * 100.0,
                "ok": True,
                "metrics": [],
                "regressions": 0,
            },
        )
        failures = watchdog.self_test(tmp_path)
        assert failures  # the broken comparator is detected


class TestMain:
    def test_exit_zero_on_clean_compare(self, tmp_path, capsys):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh")
        output = tmp_path / "out" / "WATCHDOG.json"
        code = watchdog._main(
            [
                "--baseline",
                str(tmp_path / "baseline"),
                "--fresh",
                str(tmp_path / "fresh"),
                "--output",
                str(output),
            ]
        )
        assert code == 0
        assert "WATCHDOG OK" in capsys.readouterr().out
        assert json.loads(output.read_text())["ok"] is True

    def test_exit_one_on_regression(self, tmp_path, capsys):
        _write_docs(tmp_path / "baseline")
        _write_docs(tmp_path / "fresh", b1=4.0 / 1.25)
        code = watchdog._main(
            [
                "--baseline",
                str(tmp_path / "baseline"),
                "--fresh",
                str(tmp_path / "fresh"),
            ]
        )
        assert code == 1
        assert "WATCHDOG FAIL" in capsys.readouterr().out

    def test_exit_two_on_missing_documents(self, tmp_path, capsys):
        code = watchdog._main(
            [
                "--baseline",
                str(tmp_path / "nope"),
                "--fresh",
                str(tmp_path / "also-nope"),
            ]
        )
        assert code == 2

    def test_exit_two_without_fresh(self, capsys):
        assert watchdog._main([]) == 2

    def test_self_test_entry_point(self, capsys):
        assert watchdog._main(["--self-test"]) == 0
        assert "SELF-TEST OK" in capsys.readouterr().out

    def test_committed_trajectory_is_self_consistent(self, capsys):
        """The repo's own BENCH_*.json documents must pass the watchdog
        against themselves (guards against malformed committed files)."""
        root = Path(__file__).resolve().parent.parent
        code = watchdog._main(
            ["--baseline", str(root), "--fresh", str(root)]
        )
        assert code == 0
