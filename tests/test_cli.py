"""CLI tests: every subcommand, exit codes, and error paths."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.generators.location import location_instance, location_schema
from repro.io import instance_to_dict, schema_to_json


@pytest.fixture()
def schema_file(tmp_path):
    path = tmp_path / "location.json"
    path.write_text(schema_to_json(location_schema()))
    return str(path)


@pytest.fixture()
def instance_file(tmp_path):
    path = tmp_path / "instance.json"
    path.write_text(json.dumps(instance_to_dict(location_instance())))
    return str(path)


class TestAudit:
    def test_clean_schema_exits_zero(self, schema_file, capsys):
        assert main(["audit", schema_file]) == 0
        out = capsys.readouterr().out
        assert "ok   Store" in out

    def test_dead_category_exits_one(self, tmp_path, capsys):
        schema = location_schema().with_constraints(
            ["not SaleRegion -> Country"]
        )
        path = tmp_path / "broken.json"
        path.write_text(schema_to_json(schema))
        assert main(["audit", str(path)]) == 1
        assert "DEAD" in capsys.readouterr().out


class TestImplies:
    def test_implied(self, schema_file, capsys):
        assert main(["implies", schema_file, "Store -> City"]) == 0
        assert "implied" in capsys.readouterr().out

    def test_not_implied_shows_counterexample(self, schema_file, capsys):
        assert main(["implies", schema_file, "Store.Province.Country"]) == 1
        out = capsys.readouterr().out
        assert "not implied" in out
        assert "counterexample" in out

    def test_bad_constraint_is_an_error(self, schema_file, capsys):
        assert main(["implies", schema_file, "Store -> "]) == 2
        assert "error" in capsys.readouterr().err


class TestSummarizable:
    def test_yes(self, schema_file, capsys):
        code = main(["summarizable", schema_file, "Country", "City"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "yes"

    def test_no(self, schema_file, capsys):
        code = main(
            ["summarizable", schema_file, "Country", "State", "Province"]
        )
        assert code == 1
        assert capsys.readouterr().out.strip() == "no"


class TestFrozen:
    def test_lists_four(self, schema_file, capsys):
        assert main(["frozen", schema_file, "Store"]) == 0
        out = capsys.readouterr().out
        assert out.count("f") >= 4
        assert "Country=Canada" in out

    def test_dot_output(self, schema_file, capsys):
        assert main(["frozen", schema_file, "Store", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_unsatisfiable_root(self, tmp_path, capsys):
        schema = location_schema().with_constraints(["not Store -> City"])
        path = tmp_path / "broken.json"
        path.write_text(schema_to_json(schema))
        assert main(["frozen", str(path), "Store"]) == 1


class TestValidate:
    def test_valid_instance(self, schema_file, instance_file, capsys):
        assert main(["validate", schema_file, instance_file]) == 0
        assert "valid" in capsys.readouterr().out

    def test_instance_without_hierarchy_uses_schema(
        self, schema_file, tmp_path, capsys
    ):
        document = instance_to_dict(location_instance())
        del document["hierarchy"]
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(document))
        assert main(["validate", schema_file, str(path)]) == 0

    def test_constraint_violation_reported(self, schema_file, tmp_path, capsys):
        document = instance_to_dict(location_instance())
        document["edges"] = [
            edge for edge in document["edges"] if edge != ["s1", "Toronto"]
        ]
        document["edges"].append(["s1", "SR-North"])
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(document))
        assert main(["validate", schema_file, str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_structural_violation_reported(self, schema_file, tmp_path, capsys):
        document = instance_to_dict(location_instance())
        document["edges"] = [
            edge for edge in document["edges"] if edge[0] != "s1"
        ]  # s1 loses all parents: (C7)
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(document))
        assert main(["validate", schema_file, str(path)]) == 1


class TestOther:
    def test_dot(self, schema_file, capsys):
        assert main(["dot", schema_file]) == 0
        assert '"Store" -> "City";' in capsys.readouterr().out

    def test_satisfiable(self, schema_file, capsys):
        assert main(["satisfiable", schema_file, "Store"]) == 0
        assert "satisfiable" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["audit", "/nonexistent/schema.json"]) == 2

    def test_module_entry_point(self, schema_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "audit", schema_file],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "Store" in proc.stdout


class TestExplain:
    def test_positive(self, schema_file, capsys):
        assert main(["explain", schema_file, "Country", "City"]) == 0
        assert "summarizable" in capsys.readouterr().out

    def test_negative_with_evidence(self, schema_file, capsys):
        code = main(["explain", schema_file, "Country", "State", "Province"])
        assert code == 1
        out = capsys.readouterr().out
        assert "NOT summarizable" in out
        assert "LOST" in out
        assert "Washington" in out


class TestShow:
    def test_schema_tree(self, schema_file, capsys):
        assert main(["show", schema_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("All")
        assert "constraints:" in out
        assert "Store -> City" in out

    def test_schema_and_instance(self, schema_file, instance_file, capsys):
        assert main(["show", schema_file, instance_file]) == 0
        out = capsys.readouterr().out
        assert "all [All]" in out
        assert "Toronto" in out


class TestStats:
    def test_stats_report(self, schema_file, capsys):
        assert main(["stats", schema_file]) == 0
        out = capsys.readouterr().out
        assert "categories (N):" in out
        assert "Store: satisfiable" in out


class TestNormalize:
    def test_emits_equivalent_schema(self, tmp_path, capsys):
        from repro.core.normalize import schemas_equivalent
        from repro.io import schema_from_json

        doubled = location_schema().with_constraints(["Store -> City"])
        path = tmp_path / "doubled.json"
        path.write_text(schema_to_json(doubled))
        assert main(["normalize", str(path)]) == 0
        captured = capsys.readouterr()
        assert "dropped (redundant)" in captured.err
        assert "declared implied into" in captured.err
        rebuilt = schema_from_json(captured.out)
        assert schemas_equivalent(rebuilt, doubled)


class TestReport:
    def test_markdown_report(self, schema_file, capsys):
        assert main(["report", schema_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Dimension schema report")
        assert "## Safe aggregation" in out

    def test_report_with_explicit_root(self, schema_file, capsys):
        assert main(["report", schema_file, "--root", "City"]) == 0
        assert "root: City" in capsys.readouterr().out


class TestCacheStats:
    def test_stats_printed_to_stderr_after_command(self, schema_file, capsys):
        assert main(["--cache-stats", "implies", schema_file, "Store -> City"]) == 0
        captured = capsys.readouterr()
        assert "implied" in captured.out
        assert "decision cache:" in captured.err
        assert "circle-operator cache:" in captured.err
        assert "hit rate" in captured.err

    def test_flag_off_prints_nothing_extra(self, schema_file, capsys):
        assert main(["implies", schema_file, "Store -> City"]) == 0
        assert "decision cache:" not in capsys.readouterr().err

    def test_stats_printed_even_on_errors(self, schema_file, capsys):
        assert main(["--cache-stats", "implies", schema_file, "Store -> "]) == 2
        captured = capsys.readouterr()
        assert "error" in captured.err
        assert "decision cache:" in captured.err


class TestCacheDir:
    @pytest.fixture(autouse=True)
    def _clean_default_cache(self):
        from repro.core import default_decision_cache

        default_decision_cache().clear()
        yield
        default_decision_cache().clear()

    def test_cache_persists_across_invocations(
        self, schema_file, tmp_path, capsys
    ):
        from repro.core import default_decision_cache

        cache_dir = str(tmp_path / "cache")
        assert (
            main(["--cache-dir", cache_dir, "implies", schema_file, "Store -> City"])
            == 0
        )
        import os

        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))
        # Second process (simulated by clearing the in-memory cache):
        # the verdict loads from disk, replay-verifies, and serves as a
        # hit without recomputation.
        default_decision_cache().clear()
        capsys.readouterr()
        assert (
            main(["--cache-dir", cache_dir, "implies", schema_file, "Store -> City"])
            == 0
        )
        captured = capsys.readouterr()
        assert "cache-load:" in captured.err
        assert default_decision_cache().stats.hits >= 1
        assert default_decision_cache().stats.misses == 0

    def test_corrupt_cache_warns_and_runs_cold(
        self, schema_file, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "decisions.cache").write_bytes(b"\x00garbage\n")
        assert (
            main(
                ["--cache-dir", str(cache_dir), "implies", schema_file, "Store -> City"]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "warning: ignoring persistent cache" in captured.err
        assert "implied" in captured.out

    def test_missing_dir_is_a_cold_start(self, schema_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "never-created")
        assert (
            main(["--cache-dir", cache_dir, "implies", schema_file, "Store -> City"])
            == 0
        )
        captured = capsys.readouterr()
        assert "cache-load:" not in captured.err  # nothing to load
        import os

        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))


class TestExitPathPersistence:
    """Every exit path - Ctrl-C, uncaught exceptions, failing telemetry
    teardown - must still land the warm cache on disk."""

    @pytest.fixture(autouse=True)
    def _clean_default_cache(self):
        from repro.core import default_decision_cache

        default_decision_cache().clear()
        yield
        default_decision_cache().clear()

    def test_keyboard_interrupt_still_saves_cache(
        self, schema_file, tmp_path, capsys, monkeypatch
    ):
        import os

        import repro.cli as cli_module

        cache_dir = str(tmp_path / "cache")
        real = cli_module._cmd_implies

        def interrupted(args):
            real(args)  # warms the default cache ...
            raise KeyboardInterrupt  # ... then Ctrl-C lands

        monkeypatch.setattr(cli_module, "_cmd_implies", interrupted)
        code = main(
            ["--cache-dir", cache_dir, "implies", schema_file, "Store -> City"]
        )
        assert code == 130
        captured = capsys.readouterr()
        assert "interrupted" in captured.err
        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))
        # ... and the interrupted run's verdicts replay cleanly.
        from repro.core import DecisionCache, load_cache

        report = load_cache(DecisionCache(), cache_dir)
        assert report.found and report.clean and report.loaded >= 1

    def test_uncaught_exception_still_saves_cache(
        self, schema_file, tmp_path, monkeypatch
    ):
        import os

        import repro.cli as cli_module

        cache_dir = str(tmp_path / "cache")
        real = cli_module._cmd_implies

        def crashing(args):
            real(args)
            raise RuntimeError("boom")

        monkeypatch.setattr(cli_module, "_cmd_implies", crashing)
        with pytest.raises(RuntimeError):
            main(
                ["--cache-dir", cache_dir, "implies", schema_file, "Store -> City"]
            )
        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))

    def test_failing_telemetry_finalize_does_not_skip_save(
        self, schema_file, tmp_path, capsys, monkeypatch
    ):
        import os

        import repro.core.telemetry as telemetry_module

        cache_dir = str(tmp_path / "cache")

        # Disk fills up while finalize renders the derived artifacts -
        # after the pipeline has detached from the global tracer, which
        # is where a real write failure lands.
        def failing_render(snapshot):
            raise OSError("disk full")

        monkeypatch.setattr(
            telemetry_module, "render_prometheus", failing_render
        )
        code = main(
            [
                "--cache-dir",
                cache_dir,
                "--telemetry-dir",
                str(tmp_path / "telemetry"),
                "implies",
                schema_file,
                "Store -> City",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "telemetry not finalized" in captured.err
        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))

    def test_real_sigint_subprocess_lands_cache(self, schema_file, tmp_path):
        """A genuine SIGINT delivered to a separate process mid-command:
        exit code 130, cache file on disk."""
        import os
        import signal
        import subprocess
        import sys
        import time

        cache_dir = str(tmp_path / "cache")
        marker = str(tmp_path / "warm.marker")
        # A driver that warms the cache, signals readiness, then idles
        # inside the command - where Ctrl-C arrives in real usage.
        code = (
            "import sys, time\n"
            "import repro.cli as cli\n"
            "schema, cache_dir, marker = sys.argv[1:4]\n"
            "real = cli._cmd_implies\n"
            "def slow(args):\n"
            "    real(args)\n"
            "    open(marker, 'w').write('warm')\n"
            "    time.sleep(30)\n"
            "    return 0\n"
            "cli._cmd_implies = slow\n"
            "sys.exit(cli.main(['--cache-dir', cache_dir, 'implies',"
            " schema, 'Store -> City']))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-c", code, schema_file, cache_dir, marker],
            env=env,
            cwd="/root/repo",
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not os.path.exists(marker):
                assert time.monotonic() < deadline, "driver never warmed up"
                assert proc.poll() is None, proc.communicate()[1]
                time.sleep(0.02)
            proc.send_signal(signal.SIGINT)
            _out, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, err
        assert "interrupted" in err
        assert os.path.exists(os.path.join(cache_dir, "decisions.cache"))


class TestTrace:
    def test_trace_json_round_trips_the_snapshot(self, schema_file, capsys):
        assert (
            main(["trace", schema_file, "implies", "Store -> City", "--json"])
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        # The document is the tracer snapshot plus the decision header:
        # same keys, JSON-clean spans, and the summary agrees with them.
        from repro.core.trace import tracer

        snapshot_keys = set(tracer().snapshot())
        assert snapshot_keys <= set(document)
        assert document["verdict"] is True
        assert document["decision"] == ["implies", "Store -> City"]
        assert document["dropped_spans"] == 0
        names = [span["name"] for span in document["spans"]]
        assert "implication.decide" in names
        for name, row in document["summary"].items():
            assert row["count"] == names.count(name)

    def test_trace_text_rendering(self, schema_file, capsys):
        assert main(["trace", schema_file, "implies", "Store -> City"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("verdict: yes")
        assert "implication.decide" in out
        assert "summary:" in out


class TestTelemetryDir:
    def test_telemetry_dir_exports_and_audit_verify_replays(
        self, schema_file, tmp_path, capsys
    ):
        directory = tmp_path / "telemetry"
        assert (
            main(
                [
                    "--telemetry-dir",
                    str(directory),
                    "implies",
                    schema_file,
                    "Store -> City",
                ]
            )
            == 0
        )
        assert (directory / "MANIFEST.json").exists()
        assert (directory / "audit.jsonl").read_text().strip()
        capsys.readouterr()
        assert main(["audit-verify", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "divergences      0" in out

    def test_audit_verify_flags_a_tampered_log(
        self, schema_file, tmp_path, capsys
    ):
        directory = tmp_path / "telemetry"
        main(
            [
                "--telemetry-dir",
                str(directory),
                "implies",
                schema_file,
                "Store -> City",
            ]
        )
        audit_path = directory / "audit.jsonl"
        records = [
            json.loads(line)
            for line in audit_path.read_text().splitlines()
            if line
        ]
        records[0]["verdict"] = not records[0]["verdict"]
        audit_path.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        capsys.readouterr()
        assert main(["audit-verify", str(directory)]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_audit_verify_refuses_the_active_telemetry_dir(
        self, schema_file, tmp_path, capsys
    ):
        directory = tmp_path / "telemetry"
        main(
            [
                "--telemetry-dir",
                str(directory),
                "implies",
                schema_file,
                "Store -> City",
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "--telemetry-dir",
                    str(directory),
                    "audit-verify",
                    str(directory),
                ]
            )
            == 2
        )
        assert "truncated" in capsys.readouterr().err
        # The guard really did protect the log: it still replays clean.
        assert main(["audit-verify", str(directory)]) == 0

    def test_report_telemetry_renders_the_operator_report(
        self, schema_file, tmp_path, capsys
    ):
        directory = tmp_path / "telemetry"
        main(
            [
                "--telemetry-dir",
                str(directory),
                "implies",
                schema_file,
                "Store -> City",
            ]
        )
        capsys.readouterr()
        assert main(["report", "--telemetry", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report:" in out
        assert "implies" in out

    def test_report_rejects_schema_and_telemetry_together(
        self, schema_file, tmp_path, capsys
    ):
        assert (
            main(["report", schema_file, "--telemetry", str(tmp_path)]) == 2
        )
        assert "not both" in capsys.readouterr().err


class TestWorkersAndBudget:
    def test_audit_with_workers(self, schema_file, capsys):
        assert main(["--workers", "4", "audit", schema_file]) == 0
        out = capsys.readouterr().out
        assert "ok   Store" in out
        assert "ok   All" in out

    def test_implies_with_workers(self, schema_file, capsys):
        assert main(["--workers", "2", "implies", schema_file, "Store -> City"]) == 0
        assert "implied" in capsys.readouterr().out

    def test_summarizable_with_workers(self, schema_file, capsys):
        assert (
            main(
                ["--workers", "4", "summarizable", schema_file, "Country", "City"]
            )
            == 0
        )
        assert "yes" in capsys.readouterr().out

    def test_exhausted_budget_exits_three(self, tmp_path, capsys):
        # A fresh constraint set gives a fresh fingerprint, so the verdict
        # cannot already sit in the process-wide decision cache (a cache
        # hit would legitimately bypass the budget).
        schema = location_schema().with_constraints(["City -> Province"])
        path = tmp_path / "fresh.json"
        path.write_text(schema_to_json(schema))
        assert (
            main(["--budget-ms", "1e-7", "satisfiable", str(path), "Store"]) == 3
        )
        assert "budget exceeded" in capsys.readouterr().err

    def test_generous_budget_is_harmless(self, schema_file, capsys):
        assert (
            main(["--budget-ms", "60000", "satisfiable", schema_file, "Store"]) == 0
        )
        assert "satisfiable" in capsys.readouterr().out
