"""Property-based tests of DIMSAT against the brute-force oracle.

On random small schemas (every knob randomized), DIMSAT and the exhaustive
baseline must return the same satisfiability verdict for every category,
and the same set of frozen-dimension skeletons; the ablated configurations
must agree too.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_frozen_dimensions, brute_force_satisfiable
from repro.constraints import satisfies_all
from repro.core import DimsatOptions, dimsat, enumerate_frozen_dimensions
from repro.generators.random_schema import RandomSchemaConfig, random_schema

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def small_schemas(draw):
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.3, 0.6])),
        skip_edge_prob=draw(st.sampled_from([0.0, 0.2])),
        into_fraction=draw(st.sampled_from([0.0, 0.5, 1.0])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        n_constants=draw(st.integers(min_value=1, max_value=2)),
        attributed_fraction=draw(st.sampled_from([0.0, 0.5])),
        equality_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_schema(config)


@SETTINGS
@given(small_schemas())
def test_dimsat_agrees_with_brute_force(schema):
    for category in sorted(schema.hierarchy.categories):
        assert (
            dimsat(schema, category).satisfiable
            == brute_force_satisfiable(schema, category)
        ), category


@SETTINGS
@given(small_schemas())
def test_enumeration_matches_brute_force_skeletons(schema):
    bottom = sorted(schema.hierarchy.bottom_categories())[0]
    fast = {f.subhierarchy for f in enumerate_frozen_dimensions(schema, bottom)}
    brute = {
        f.subhierarchy for f in brute_force_frozen_dimensions(schema, bottom)
    }
    assert fast == brute


@SETTINGS
@given(small_schemas())
def test_ablations_agree(schema):
    ablated = DimsatOptions(
        into_pruning=False, shortcut_pruning=False, cycle_pruning=False
    )
    for category in sorted(schema.hierarchy.categories):
        assert (
            dimsat(schema, category).satisfiable
            == dimsat(schema, category, ablated).satisfiable
        ), category


@SETTINGS
@given(small_schemas())
def test_witnesses_materialize_to_conforming_instances(schema):
    for category in sorted(schema.hierarchy.categories):
        result = dimsat(schema, category)
        if not result.satisfiable:
            continue
        instance = result.witness.to_instance(schema)
        assert instance.is_valid()
        assert satisfies_all(instance, schema.constraints)


@st.composite
def numeric_schemas(draw):
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.4])),
        into_fraction=draw(st.sampled_from([0.0, 0.7])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        n_constants=draw(st.integers(min_value=1, max_value=3)),
        attributed_fraction=1.0,
        equality_constraint_prob=0.8,
        numeric_fraction=1.0,
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )
    return random_schema(config)


@SETTINGS
@given(numeric_schemas())
def test_dimsat_agrees_with_brute_force_on_numeric_schemas(schema):
    """The order-predicate extension against the oracle: the interval
    representatives must agree with exhaustive materialization."""
    for category in sorted(schema.hierarchy.categories):
        assert (
            dimsat(schema, category).satisfiable
            == brute_force_satisfiable(schema, category)
        ), category


@SETTINGS
@given(numeric_schemas())
def test_numeric_witnesses_conform(schema):
    for category in sorted(schema.hierarchy.categories):
        result = dimsat(schema, category)
        if result.satisfiable and category != "All":
            instance = result.witness.to_instance(schema)
            assert instance.is_valid()
            assert satisfies_all(instance, schema.constraints)
