"""Property-based cross-validation of Theorem 1 against Definition 6.

For random generated instances, random fact tables, and random
(target, sources) queries: whenever the Theorem 1 constraint holds, the
Definition 6 recombination must equal the direct cube view, for every
distributive aggregate.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import is_summarizable_in_instance
from repro.errors import SchemaError
from repro.generators.location import location_schema
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.workloads import instance_from_frozen, random_fact_table
from repro.olap import all_aggregates, cube_view, recombine, views_equal

SETTINGS = settings(max_examples=20, deadline=None)


@st.composite
def scenarios(draw):
    if draw(st.booleans()):
        schema = location_schema()
    else:
        schema = random_schema(
            RandomSchemaConfig(
                n_categories=draw(st.integers(min_value=3, max_value=6)),
                n_layers=draw(st.integers(min_value=2, max_value=3)),
                extra_edge_prob=draw(st.sampled_from([0.0, 0.4])),
                into_fraction=draw(st.sampled_from([0.5, 1.0])),
                seed=draw(st.integers(min_value=0, max_value=3_000)),
            )
        )
    bottom = sorted(schema.hierarchy.bottom_categories())[0]
    try:
        instance = instance_from_frozen(schema, bottom, copies=2, fan_out=2)
    except SchemaError:
        assume(False)
    facts = random_fact_table(
        instance, draw(st.integers(min_value=5, max_value=25)),
        seed=draw(st.integers(min_value=0, max_value=999)),
    )
    categories = sorted(schema.hierarchy.categories - {"All"})
    target = draw(st.sampled_from(categories))
    below = sorted(
        c for c in categories
        if c != target and schema.hierarchy.reaches(c, target)
    )
    assume(below)
    sources = draw(
        st.lists(st.sampled_from(below), min_size=1, max_size=2, unique=True)
    )
    return instance, facts, target, tuple(sources)


@SETTINGS
@given(scenarios())
def test_summarizable_implies_recombination_correct(scenario):
    instance, facts, target, sources = scenario
    if not is_summarizable_in_instance(instance, target, sources):
        assume(False)
    for aggregate in all_aggregates():
        direct = cube_view(facts, target, aggregate, "amount")
        views = [cube_view(facts, c, aggregate, "amount") for c in sources]
        derived = recombine(instance, target, views, aggregate)
        assert views_equal(direct, derived), aggregate.name


@SETTINGS
@given(scenarios())
def test_recombination_mismatch_implies_not_summarizable(scenario):
    """Contrapositive on the sampled fact table: if the recombination is
    wrong on *this* table, Theorem 1's condition cannot hold."""
    instance, facts, target, sources = scenario
    direct = cube_view(facts, target, all_aggregates()[0], "amount")
    views = [cube_view(facts, c, all_aggregates()[0], "amount") for c in sources]
    derived = recombine(instance, target, views, all_aggregates()[0])
    if not views_equal(direct, derived):
        assert not is_summarizable_in_instance(instance, target, sources)
