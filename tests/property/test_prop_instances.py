"""Property-based tests of instance-level machinery.

* Instances stamped out of frozen dimensions always satisfy (C1)-(C7) and
  the schema's constraints, at any scale;
* homogenization preserves real members' rollups and yields homogeneous,
  valid instances on every paddable random input;
* JSON round trips preserve instance semantics.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import homogenize, is_null_member
from repro.constraints import satisfies_all
from repro.core.rollup import reached_categories
from repro.errors import SchemaError
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.workloads import instance_from_frozen
from repro.io import instance_from_json, instance_to_json

SETTINGS = settings(max_examples=20, deadline=None)


@st.composite
def generated_instances(draw):
    config = RandomSchemaConfig(
        n_categories=draw(st.integers(min_value=3, max_value=6)),
        n_layers=draw(st.integers(min_value=2, max_value=3)),
        extra_edge_prob=draw(st.sampled_from([0.0, 0.4])),
        into_fraction=draw(st.sampled_from([0.5, 1.0])),
        choice_constraint_prob=draw(st.sampled_from([0.0, 0.7])),
        seed=draw(st.integers(min_value=0, max_value=5_000)),
    )
    schema = random_schema(config)
    bottom = sorted(schema.hierarchy.bottom_categories())[0]
    copies = draw(st.integers(min_value=1, max_value=3))
    fan_out = draw(st.integers(min_value=1, max_value=3))
    try:
        instance = instance_from_frozen(
            schema, bottom, copies=copies, fan_out=fan_out
        )
    except SchemaError:
        assume(False)
    return schema, instance


@SETTINGS
@given(generated_instances())
def test_generated_instances_conform(pair):
    schema, instance = pair
    assert instance.violations() == []
    assert satisfies_all(instance, schema.constraints)


@SETTINGS
@given(generated_instances())
def test_json_round_trip_preserves_structure(pair):
    _schema, instance = pair
    rebuilt = instance_from_json(instance_to_json(instance))
    assert len(rebuilt) == len(instance)
    for category in instance.hierarchy.categories:
        assert {str(m) for m in instance.members(category)} == {
            str(m) for m in rebuilt.members(category)
        }


@SETTINGS
@given(generated_instances())
def test_homogenize_properties(pair):
    _schema, instance = pair
    try:
        padded = homogenize(instance)
    except SchemaError:
        assume(False)  # genuinely unpaddable (published limitation)
        return
    assert padded.is_valid()
    # Homogeneity: one ancestor-category signature per category.
    for category in padded.hierarchy.categories:
        signatures = {
            frozenset(padded.category_of(a) for a in padded.ancestors_of(m))
            for m in padded.members(category)
        }
        assert len(signatures) <= 1, category
    # Real members keep their original rollup targets.
    for member in instance.all_members():
        for category in reached_categories(instance, member):
            assert padded.ancestor_in(member, category) == instance.ancestor_in(
                member, category
            )
    # Nulls only ever appear above real members, never below base level.
    for member in padded.all_members():
        if is_null_member(member):
            assert padded.children_of(member)
