"""Property-based soundness of provenance-scoped invalidation.

Over random schemas and `mixed_trace` constraint edits: after every
`SchemaEditor` edit, the verdicts the rekey carried over to the new
fingerprint must be byte-identical to a fresh sequential recomputation,
the verdicts whose dependency cone the edit touched must be gone, and
the replaced fingerprint must retain nothing - the invariant the module
docstring of `repro.core.provenance` argues for.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ALL, DecisionCache, schema_delta
from repro.core.dimsat import dimsat
from repro.core.implication import implies as run_implies
from repro.generators.random_schema import RandomSchemaConfig, random_schema
from repro.generators.workloads import mixed_trace
from repro.olap.maintenance import SchemaEditor

SETTINGS = settings(max_examples=12, deadline=None)


def _canonical(value: object) -> str:
    """Byte-comparable verdict content.

    Work counters (circle-cache hits/misses) depend on process-wide
    state, so canonicalization covers the verdict and its witness /
    counterexample - the bytes a caller can observe.
    """
    if isinstance(value, bool):
        return json.dumps(value)
    satisfiable = getattr(value, "satisfiable", None)
    if satisfiable is not None:
        return json.dumps([satisfiable, repr(value.witness)])
    return json.dumps([value.implied, repr(value.counterexample)])


def _fresh(schema, key) -> str:
    """Sequential uncached recomputation of one cache key."""
    kind = key[0]
    if kind == "dimsat":
        return _canonical(dimsat(schema, key[1]))
    if kind == "implies":
        return _canonical(run_implies(schema, key[1], cache=None))
    raise AssertionError(f"unexpected kind {kind!r}")


@SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_every_edit_splits_the_cache_soundly(seed):
    schema = random_schema(
        RandomSchemaConfig(
            n_categories=seed % 3 + 5,
            n_layers=3,
            choice_constraint_prob=0.6,
            equality_constraint_prob=0.4,
            seed=seed,
        )
    )
    cache = DecisionCache()
    editor = SchemaEditor(schema, cache)

    edits = [
        op
        for op in mixed_trace(schema, n_ops=60, seed=seed)
        if op[0] == "edit"
    ][:4]
    added = []

    for op in edits:
        # Re-warm under the current schema so every edit has entries to
        # split: one dimsat per category plus one implies per constraint.
        current = editor.schema
        for category in sorted(current.hierarchy.categories - {ALL}):
            cache.dimsat(current, category)
        for node in current.constraints[:4]:
            cache.implies(current, node)

        warm_keys = cache.entries_for(current.fingerprint())
        warm = {key: cache.peek(key) for key in warm_keys}
        provenance = {key: cache.provenance_of(key) for key in warm_keys}
        assert all(p is not None for p in provenance.values())

        if op[1] == "drop-added":
            if not added:
                continue
            node = added.pop()
            edited = editor.drop_constraint(node)
        else:
            node = op[2]
            if node in current.constraints:
                continue
            edited = editor.add_constraint(node)
            added.append(node)

        delta = schema_delta(current, edited)
        expected_survivors = {
            key
            for key in warm_keys
            if provenance[key].survives(delta)
        }

        # Nothing remains under the replaced fingerprint.
        assert not cache.holds(current.fingerprint())

        new_keys = set(cache.entries_for(edited.fingerprint()))
        rekeyed_expected = {
            (edited.fingerprint(),) + key[1:] for key in expected_survivors
        }
        assert new_keys == rekeyed_expected

        for key in warm_keys:
            new_key = (edited.fingerprint(),) + key[1:]
            if key in expected_survivors:
                # Byte-identical to a fresh sequential recomputation on
                # the edited schema.
                survived = cache.peek(new_key)
                assert survived is warm[key]
                assert _canonical(survived) == _fresh(edited, key[1:])
            else:
                # Touched verdicts are gone - the next ask recomputes.
                assert cache.peek(new_key) is None
