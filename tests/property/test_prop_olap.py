"""Property-based tests of the OLAP layer.

* cube views equal a straight-line reference computation on random facts;
* delta maintenance equals full rebuilds for random splits of a fact set;
* a one-dimensional multidim cube agrees with the single-dimension
  engine cell for cell;
* restriction/composition laws of fact tables.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.location import location_instance
from repro.olap import (
    COUNT,
    MAX,
    MIN,
    SUM,
    FactTable,
    all_aggregates,
    cube_view,
    views_equal,
)
from repro.olap.maintenance import apply_delta
from repro.olap.multidim import Cube

SETTINGS = settings(max_examples=30, deadline=None)

_INSTANCE = location_instance()
_BASE = sorted(_INSTANCE.base_members())


@st.composite
def fact_rows(draw, min_size=0, max_size=25):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    rows = []
    for index in range(n):
        member = draw(st.sampled_from(_BASE))
        value = draw(
            st.floats(
                min_value=-100, max_value=100,
                allow_nan=False, allow_infinity=False,
            )
        )
        rows.append((member, {"v": value}))
    return rows


def reference_cells(rows, category, aggregate):
    """Straight-line recomputation, bypassing the library's grouping."""
    groups = {}
    for member, measures in rows:
        target = _INSTANCE.ancestor_in(member, category)
        if target is None:
            continue
        groups.setdefault(target, []).append(measures["v"])
    fold = {
        "SUM": sum,
        "COUNT": len,
        "MIN": min,
        "MAX": max,
    }[aggregate.name]
    return {member: float(fold(values)) for member, values in groups.items()}


@SETTINGS
@given(fact_rows(), st.sampled_from(["Store", "City", "State", "Country"]))
def test_cube_view_matches_reference(rows, category):
    facts = FactTable(_INSTANCE, rows)
    for aggregate in all_aggregates():
        view = cube_view(facts, category, aggregate, "v")
        expected = reference_cells(rows, category, aggregate)
        assert set(view.cells) == set(expected)
        for member, value in expected.items():
            assert abs(view.cells[member] - value) < 1e-9


@SETTINGS
@given(fact_rows(min_size=1), st.data())
def test_delta_maintenance_equals_rebuild(rows, data):
    cut = data.draw(st.integers(min_value=0, max_value=len(rows)))
    base, extra = rows[:cut], rows[cut:]
    for aggregate in all_aggregates():
        stale = cube_view(FactTable(_INSTANCE, base), "Country", aggregate, "v")
        patched = apply_delta(
            _INSTANCE, stale, FactTable(_INSTANCE, extra)
        )
        rebuilt = cube_view(FactTable(_INSTANCE, rows), "Country", aggregate, "v")
        assert views_equal(patched, rebuilt), aggregate.name


@SETTINGS
@given(fact_rows())
def test_one_dimensional_cube_agrees_with_engine(rows):
    cube = Cube({"location": _INSTANCE})
    cube.load(({"location": member}, measures) for member, measures in rows)
    for category in ("City", "Country"):
        multi = cube.view({"location": category}, SUM, "v")
        single = cube_view(FactTable(_INSTANCE, rows), category, SUM, "v")
        assert set(multi.cells) == {(m,) for m in single.cells}
        for member, value in single.cells.items():
            assert abs(multi.cells[(member,)] - value) < 1e-9


@SETTINGS
@given(fact_rows())
def test_restrict_partitions_the_table(rows):
    facts = FactTable(_INSTANCE, rows)
    wanted = set(_BASE[:3])
    inside = facts.restrict(sorted(wanted))
    outside = facts.restrict(sorted(set(_BASE) - wanted))
    assert len(inside) + len(outside) == len(facts)
    merged = sorted(inside.values("v") + outside.values("v"))
    assert merged == sorted(facts.values("v"))


@SETTINGS
@given(fact_rows())
def test_count_view_total_is_row_count_at_total_categories(rows):
    facts = FactTable(_INSTANCE, rows)
    # Every store reaches Country, so COUNT cells sum to the row count.
    view = cube_view(facts, "Country", COUNT, "v")
    assert sum(view.cells.values()) == len(facts)
