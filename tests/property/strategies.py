"""Shared hypothesis strategies: constraint expressions over the location
hierarchy, and random schema configurations."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.constraints import (
    And,
    ComparisonAtom,
    EqualityAtom,
    ExactlyOne,
    Iff,
    Implies,
    Not,
    Or,
    PathAtom,
    RollsUpAtom,
    ThroughAtom,
)
from repro.generators.location import location_hierarchy

_HIERARCHY = location_hierarchy()
_CATEGORIES = sorted(_HIERARCHY.categories)
_NON_ALL = [c for c in _CATEGORIES if c != "All"]
_CONSTANTS = ["Canada", "Mexico", "USA", "Washington", "Other"]
_NUMBERS = ["0", "1", "9.5", "100", "-3"]
_OPS = ["<", "<=", ">", ">=", "!="]

# Simple paths of the location hierarchy, grouped by their root - path
# atoms must name real simple paths (Definition 3).
_PATHS_BY_ROOT = {}
for _start in _NON_ALL:
    paths = []
    for _end in _CATEGORIES:
        if _end == _start:
            continue
        paths.extend(_HIERARCHY.simple_paths(_start, _end))
    _PATHS_BY_ROOT[_start] = paths
_ROOTS_WITH_PATHS = [c for c in _NON_ALL if _PATHS_BY_ROOT[c]]


@st.composite
def path_atoms(draw, root=None):
    root = root if root is not None else draw(st.sampled_from(_ROOTS_WITH_PATHS))
    path = draw(st.sampled_from(_PATHS_BY_ROOT[root]))
    return PathAtom(root, tuple(path[1:]))


@st.composite
def equality_atoms(draw, root=None):
    root = root if root is not None else draw(st.sampled_from(_NON_ALL))
    category = draw(st.sampled_from(_CATEGORIES))
    constant = draw(st.sampled_from(_CONSTANTS))
    return EqualityAtom(root, category, constant)


@st.composite
def rolls_up_atoms(draw, root=None):
    root = root if root is not None else draw(st.sampled_from(_NON_ALL))
    target = draw(st.sampled_from(_CATEGORIES))
    return RollsUpAtom(root, target)


@st.composite
def through_atoms(draw, root=None):
    root = root if root is not None else draw(st.sampled_from(_NON_ALL))
    via = draw(st.sampled_from(_CATEGORIES))
    target = draw(st.sampled_from(_CATEGORIES))
    return ThroughAtom(root, via, target)


@st.composite
def comparison_atoms(draw, root=None):
    root = root if root is not None else draw(st.sampled_from(_NON_ALL))
    category = draw(st.sampled_from(_CATEGORIES))
    op = draw(st.sampled_from(_OPS))
    constant = draw(st.sampled_from(_NUMBERS))
    return ComparisonAtom(root, category, op, constant)


def atoms(root=None):
    return st.one_of(
        path_atoms(root=root),
        equality_atoms(root=root),
        rolls_up_atoms(root=root),
        through_atoms(root=root),
        comparison_atoms(root=root),
    )


@st.composite
def constraints(draw, root=None, max_depth=3):
    """Well-formed single-root constraint expressions."""
    root = root if root is not None else draw(st.sampled_from(_ROOTS_WITH_PATHS))

    def build(depth):
        if depth <= 0:
            return atoms(root=root)
        sub = st.deferred(lambda: build(depth - 1))
        return st.one_of(
            atoms(root=root),
            sub.map(Not),
            st.tuples(sub, sub).map(lambda p: And(p)),
            st.tuples(sub, sub).map(lambda p: Or(p)),
            st.tuples(sub, sub).map(lambda p: Implies(*p)),
            st.tuples(sub, sub).map(lambda p: Iff(*p)),
            st.lists(sub, min_size=1, max_size=3).map(
                lambda ops: ExactlyOne(tuple(ops))
            ),
        )

    return draw(build(max_depth))


def location_roots():
    return st.sampled_from(_ROOTS_WITH_PATHS)
