"""Property-based tests of the constraint language.

Invariants:

* parser/printer round trip on arbitrary well-formed constraints;
* simplify and nnf preserve truth tables and are idempotent/shaped;
* composed atoms evaluate identically to their path-atom expansions over
  the paper's instance (the equivalence the circle operator relies on);
* substituting every atom by its truth value folds to the evaluation.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings

from repro.constraints import (
    FALSE,
    TRUE,
    Not,
    PathAtom,
    evaluate,
    expand,
    nnf,
    parse,
    satisfies_at,
    simplify,
    substitute,
    unparse,
    walk,
)
from repro.constraints.simplify import constant_substitution
from repro.generators.location import location_hierarchy, location_instance

from strategies import constraints

SETTINGS = settings(max_examples=60, deadline=None)


def truth_assignments(node, limit=64):
    atom_list = sorted(set(node.atoms()), key=repr)[:6]
    for bits in itertools.islice(
        itertools.product((False, True), repeat=len(atom_list)), limit
    ):
        yield dict(zip(atom_list, bits))


def eval_under(node, assignment):
    return evaluate(node, lambda atom: assignment.get(atom, False))


@SETTINGS
@given(constraints())
def test_parse_unparse_round_trip(node):
    assert parse(unparse(node)) == node


@SETTINGS
@given(constraints())
def test_simplify_preserves_truth_table(node):
    folded = simplify(node)
    for assignment in truth_assignments(node):
        assert eval_under(node, assignment) == eval_under(folded, assignment)


@SETTINGS
@given(constraints())
def test_simplify_idempotent(node):
    once = simplify(node)
    assert simplify(once) == once


@SETTINGS
@given(constraints())
def test_nnf_preserves_truth_table(node):
    normal = nnf(node)
    for assignment in truth_assignments(node):
        assert eval_under(node, assignment) == eval_under(normal, assignment)


@SETTINGS
@given(constraints())
def test_nnf_shape(node):
    from repro.constraints import And, Or
    from repro.constraints.ast import Atom, FalseConst, TrueConst

    normal = nnf(node)
    for sub in walk(normal):
        assert isinstance(sub, (And, Or, Not, Atom, TrueConst, FalseConst))
        if isinstance(sub, Not):
            assert isinstance(sub.child, Atom)


@SETTINGS
@given(constraints())
def test_full_substitution_folds_to_constant(node):
    for assignment in itertools.islice(truth_assignments(node), 4):
        full = {atom: assignment.get(atom, False) for atom in node.atoms()}
        pinned = simplify(substitute(node, constant_substitution(full)))
        expected = TRUE if eval_under(node, assignment) else FALSE
        assert pinned == expected


@SETTINGS
@given(constraints())
def test_composed_expansion_agrees_on_instance(node):
    """Over a valid instance, evaluating composed atoms directly equals
    evaluating their disjunction-of-path-atoms expansion."""
    hierarchy = location_hierarchy()
    instance = location_instance()
    expanded = expand(node, hierarchy)
    from repro.constraints import constraint_root

    root = constraint_root(node)
    members = instance.members(root) if root else ["s1"]
    for member in members:
        assert satisfies_at(instance, member, node) == satisfies_at(
            instance, member, expanded
        )


@SETTINGS
@given(constraints())
def test_expansion_mentions_only_plain_atoms(node):
    from repro.constraints import ComparisonAtom, EqualityAtom

    expanded = expand(node, location_hierarchy())
    for atom in expanded.atoms():
        assert isinstance(atom, (PathAtom, EqualityAtom, ComparisonAtom))


@SETTINGS
@given(constraints())
def test_double_negation_equivalent(node):
    double = Not(Not(node))
    for assignment in truth_assignments(node):
        assert eval_under(node, assignment) == eval_under(double, assignment)


@settings(max_examples=150, deadline=None)
@given(
    __import__("hypothesis").strategies.text(
        alphabet="abAB_ ->.=<>!()'one,0123456789",
        min_size=0,
        max_size=40,
    )
)
def test_parser_total_over_junk(text):
    """The parser either returns a node or raises ConstraintSyntaxError -
    never any other exception type (totality over arbitrary input)."""
    from repro.errors import ConstraintSyntaxError

    try:
        node = parse(text)
    except ConstraintSyntaxError:
        return
    except ValueError as error:
        # Comparison atoms validate their operator/constant via the AST
        # constructor; the parser must have converted those already.
        raise AssertionError(f"leaked ValueError for {text!r}: {error}")
    # Whatever parsed must render and re-parse to itself.
    assert parse(unparse(node)) == node
